// Package netsim models the cluster interconnect on the discrete-event
// clock: one full-duplex NIC per machine with independent egress and ingress
// serialization at a configurable rate — the simulated equivalent of the
// paper's `tc qdisc` rate limiting.
//
// Each direction is a single queueing server: transmitting a message occupies
// the sender's egress for overhead + size/rate, propagates, then occupies the
// receiver's ingress likewise (store-and-forward through an uncongested
// core — the paper's testbed is a small cluster on a non-blocking switch).
// The egress queue discipline is pluggable (Config.Egress names a
// sched.Discipline): "fifo" reproduces the baseline strategies, "p3" the
// worker-side producer/consumer mechanism of Section 4.2 — the
// highest-priority queued message is always transmitted next, and an
// in-flight message finishes before the next choice is made (preemption at
// message granularity). Credit-gated disciplines see the true transmission
// window: a message is charged in flight from the moment its serialization
// starts until it is fully delivered at the receiver, so "credit:<bytes>"
// bounds the bytes in the pipe per NIC, ByteScheduler-style.
package netsim

import (
	"fmt"

	"p3/internal/pq"
	"p3/internal/sched"
	"p3/internal/sim"
	"p3/internal/trace"
)

// Config holds the interconnect parameters.
type Config struct {
	// BandwidthGbps is the NIC rate per direction, in gigabits per second
	// (the unit of the paper's x axes).
	BandwidthGbps float64
	// PropDelay is the one-way propagation latency between machines.
	PropDelay sim.Time
	// PerMsgOverhead is the fixed software cost charged per message per
	// direction (syscall, serialization); it is what makes very small
	// parameter slices unprofitable (paper §5.7).
	PerMsgOverhead sim.Time
	// HeaderBytes is the wire framing added to every message.
	HeaderBytes int64
	// LocalBandwidthGbps is the loopback rate for messages between a worker
	// and the server co-located on the same machine (never crosses the NIC).
	LocalBandwidthGbps float64
	// LocalDelay is the fixed loopback latency.
	LocalDelay sim.Time
	// Egress names the egress queue discipline (sched registry): "" or
	// "fifo" for the baseline, "p3" for P3's priority queue, "rr",
	// "smallest", "credit[:bytes]", ... Each NIC gets a fresh discipline
	// instance, so stateful disciplines never share state across machines.
	Egress string
	// Profile optionally supplies model timing to profile-aware egress
	// disciplines (tictac); nil leaves them model-blind.
	Profile *sched.Profile
}

// DefaultConfig returns the interconnect constants used for every experiment
// (DESIGN.md §5), with the bandwidth left for the caller to set.
func DefaultConfig(gbps float64) Config {
	return Config{
		BandwidthGbps:      gbps,
		PropDelay:          25 * sim.Microsecond,
		PerMsgOverhead:     8 * sim.Microsecond,
		HeaderBytes:        64,
		LocalBandwidthGbps: 160,
		LocalDelay:         5 * sim.Microsecond,
	}
}

// Message is one transfer unit. Application-level meaning travels in the
// Kind/Chunk/Iter/Src fields, interpreted by the cluster layer; netsim only
// reads From, To, Bytes and Priority.
type Message struct {
	From, To int   // machine indices
	Bytes    int64 // payload size (headers are added by the network)
	Priority int32 // lower is more urgent; interpreted by the egress discipline

	Kind  uint8 // application tag: push, notify, pull, data, ...
	Chunk int32 // application tag: chunk id
	Iter  int32 // application tag: iteration number
	Src   int32 // application tag: originating worker
}

// msgItem is the scheduler-visible view of a message; the receiving machine
// is the destination key of per-destination disciplines.
func msgItem(m Message) sched.Item {
	return sched.Item{Priority: m.Priority, Bytes: m.Bytes, Dest: int32(m.To)}
}

// Handler receives fully delivered messages.
type Handler func(Message)

type nic struct {
	egress     *sched.Queue[Message]
	egressBusy bool
	ingress    *pq.Queue[Message]
	ingressBsy bool
}

// Network simulates the interconnect for n machines.
type Network struct {
	eng     *sim.Engine
	cfg     Config
	nics    []nic
	deliver Handler
	rec     *trace.Recorder // optional

	// Stats, for conservation checks and reporting.
	MsgsSent       int64
	BytesSent      int64
	MsgsDelivered  int64
	BytesDelivered int64
}

// New creates a network of n machines on the given engine. handler is invoked
// (on the virtual clock) when a message has fully arrived. rec may be nil.
// It panics on an unknown egress discipline name — validate names from user
// input with sched.ByName first.
func New(eng *sim.Engine, n int, cfg Config, handler Handler, rec *trace.Recorder) *Network {
	if cfg.BandwidthGbps <= 0 {
		panic(fmt.Sprintf("netsim: bandwidth %v Gbps", cfg.BandwidthGbps))
	}
	if cfg.LocalBandwidthGbps <= 0 {
		cfg.LocalBandwidthGbps = 160
	}
	nw := &Network{eng: eng, cfg: cfg, deliver: handler, rec: rec}
	// Ingress stays store-and-forward FIFO: reordering happens at the
	// sender, exactly as in the real system (the receiver drains the socket
	// in arrival order).
	fifoLess := func(a, b Message) bool { return false }
	nw.nics = make([]nic, n)
	for i := range nw.nics {
		nw.nics[i] = nic{
			egress:  sched.NewQueue(sched.ApplyProfile(sched.MustByName(cfg.Egress), cfg.Profile), msgItem),
			ingress: pq.New(fifoLess),
		}
	}
	return nw
}

// wireTime is the serialization time of a message in one direction.
func (nw *Network) wireTime(bytes int64) sim.Time {
	bits := float64(bytes+nw.cfg.HeaderBytes) * 8
	return nw.cfg.PerMsgOverhead + sim.Time(bits/nw.cfg.BandwidthGbps)
	// BandwidthGbps is Gbit/s = bit/ns, so bits/rate is already nanoseconds.
}

func (nw *Network) localTime(bytes int64) sim.Time {
	bits := float64(bytes+nw.cfg.HeaderBytes) * 8
	return nw.cfg.LocalDelay + sim.Time(bits/nw.cfg.LocalBandwidthGbps)
}

// Send queues m for transmission. Loopback messages (From == To) skip the
// NIC entirely, as a co-located worker and server communicate through shared
// memory in the real system.
func (nw *Network) Send(m Message) {
	nw.MsgsSent++
	nw.BytesSent += m.Bytes
	if m.From == m.To {
		nw.eng.After(nw.localTime(m.Bytes), func() {
			nw.MsgsDelivered++
			nw.BytesDelivered += m.Bytes
			nw.deliver(m)
		})
		return
	}
	nw.nics[m.From].egress.Push(m)
	nw.pumpEgress(m.From)
}

func (nw *Network) pumpEgress(machine int) {
	n := &nw.nics[machine]
	if n.egressBusy {
		return
	}
	// PopReady respects a credit-gated discipline's transmission window: a
	// refused head stays queued until a delivery returns credit (see
	// pumpIngress), which repumps this egress.
	m, ok := n.egress.PopReady()
	if !ok {
		return
	}
	n.egressBusy = true
	start := nw.eng.Now()
	tx := nw.wireTime(m.Bytes)
	nw.eng.After(tx, func() {
		nw.rec.AddRange(machine, trace.Out, start, start+tx, m.Bytes+nw.cfg.HeaderBytes)
		n.egressBusy = false
		// Hand off to the receiver after propagation.
		nw.eng.After(nw.cfg.PropDelay, func() { nw.arrive(m) })
		nw.pumpEgress(machine)
	})
}

func (nw *Network) arrive(m Message) {
	n := &nw.nics[m.To]
	n.ingress.Push(m)
	nw.pumpIngress(m.To)
}

func (nw *Network) pumpIngress(machine int) {
	n := &nw.nics[machine]
	if n.ingressBsy || n.ingress.Len() == 0 {
		return
	}
	m := n.ingress.Pop()
	n.ingressBsy = true
	start := nw.eng.Now()
	rx := nw.wireTime(m.Bytes)
	nw.eng.After(rx, func() {
		nw.rec.AddRange(machine, trace.In, start, start+rx, m.Bytes+nw.cfg.HeaderBytes)
		n.ingressBsy = false
		nw.MsgsDelivered++
		nw.BytesDelivered += m.Bytes
		// Full delivery closes the sender's transmission window for this
		// message: return its credit and let the sender's egress continue.
		nw.nics[m.From].egress.Done(m)
		nw.pumpEgress(m.From)
		nw.deliver(m)
		nw.pumpIngress(machine)
	})
}

// QueuedEgress reports how many messages wait in machine m's egress queue
// (not counting one in flight). Used by tests.
func (nw *Network) QueuedEgress(m int) int { return nw.nics[m].egress.Len() }
