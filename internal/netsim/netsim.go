// Package netsim models the cluster interconnect on the discrete-event
// clock: one full-duplex NIC per machine with independent egress and ingress
// serialization at a configurable rate — the simulated equivalent of the
// paper's `tc qdisc` rate limiting.
//
// Each direction is a single queueing server: transmitting a message occupies
// the sender's egress for overhead + size/rate, propagates, then occupies the
// receiver's ingress likewise (store-and-forward through an uncongested
// core — the paper's testbed is a small cluster on a non-blocking switch).
// The egress queue discipline is pluggable (Config.Egress names a
// sched.Discipline): "fifo" reproduces the baseline strategies, "p3" the
// worker-side producer/consumer mechanism of Section 4.2 — the
// highest-priority queued message is always transmitted next, and by
// default an in-flight message finishes before the next choice is made
// (preemption at message granularity). Config.PreemptQuantum makes egress
// transmission resumable below message granularity: an express message may
// park the in-flight transfer at a segment boundary and the remainder
// resumes later with progress retained — the true-preemption "what-if"
// upper bound that the paper's slicing approximates. Credit-gated
// disciplines see the true transmission window: a message is charged in
// flight from the moment its serialization starts until it is fully
// delivered at the receiver, so "credit:<bytes>" bounds the bytes in the
// pipe per NIC, ByteScheduler-style; the per-flow egress queue dispatches
// the most urgent admissible head, so one credit-starved destination never
// blocks traffic for the others.
//
// # Rack topologies, core scheduling, and in-rack aggregation
//
// Topology arranges machines into racks behind an oversubscribed core:
// each rack owns an uplink and a downlink port LP that store-and-forward
// inter-rack messages at the rack's aggregate NIC rate divided by
// CoreOversub. By default those ports are blind FIFO — the regime where
// host-egress priorities die at the ToR, because the core serializes in
// arrival order whatever rank the hosts assigned. Topology.CoreSched gives
// the ports a real sched.Queue instead: each port runs its own fresh
// discipline instance (seeded with the port's LP index for source-aware
// ranks, profile-applied like a host NIC), so p3/tictac/damped ranks
// survive into the core. At a ToR port a rank means the same thing it
// means at a host NIC — "which queued message does the wire take next" —
// but the port sees every flow of its rack at once, which is exactly the
// aggregate view host egress lacks. CoreSched "fifo" dequeues in global
// arrival order (ties by insertion) and is pinned bit-identical to the
// blind FIFO path.
//
// Config.Aggregation adds one in-rack aggregator LP per rack — the
// Parameter Hub design point. The aggregator is the application's hook,
// not a policy: messages addressed to it (Message.ToAgg, with To naming
// the rack) are handed to Config.AggDeliver on the aggregator's timeline,
// and the application replies with AggSend (one reduced stream toward the
// core or a rack-local machine) or AggFanout (ToR-line-rate broadcast
// replication: one copy per rack machine, each paying only propagation
// plus its receiver's ingress). Aggregator ingest itself is free — it
// models a switch/ASIC-side reduction engine, not a host NIC; charging
// host serialization there would just recreate the bottleneck the design
// removes. Every aggregator hop goes through the canonical cross-LP
// transfer path (xfer) with at least PropDelay of latency, so the
// lookahead bound is unchanged and an N-shard run reproduces the 1-shard
// Result bit for bit; the aggregator LP lives on its rack's shard, so only
// the core hop crosses shards, exactly as without aggregation.
package netsim

import (
	"fmt"

	"p3/internal/pq"
	"p3/internal/sched"
	"p3/internal/sim"
	"p3/internal/trace"
)

// Config holds the interconnect parameters.
type Config struct {
	// BandwidthGbps is the NIC rate per direction, in gigabits per second
	// (the unit of the paper's x axes).
	BandwidthGbps float64
	// PropDelay is the one-way propagation latency between machines.
	PropDelay sim.Time
	// PerMsgOverhead is the fixed software cost charged per message per
	// direction (syscall, serialization); it is what makes very small
	// parameter slices unprofitable (paper §5.7).
	PerMsgOverhead sim.Time
	// HeaderBytes is the wire framing added to every message.
	HeaderBytes int64
	// LocalBandwidthGbps is the loopback rate for messages between a worker
	// and the server co-located on the same machine (never crosses the NIC).
	LocalBandwidthGbps float64
	// LocalDelay is the fixed loopback latency.
	LocalDelay sim.Time
	// Egress names the egress queue discipline (sched registry): "" or
	// "fifo" for the baseline, "p3" for P3's priority queue, "rr",
	// "smallest", "credit[:bytes]", ... Each NIC gets a fresh discipline
	// instance, so stateful disciplines never share state across machines.
	Egress string
	// Profile optionally supplies model timing to profile-aware egress
	// disciplines (tictac); nil leaves them model-blind.
	Profile *sched.Profile
	// Topology optionally arranges the machines into racks behind an
	// oversubscribed core. The zero value keeps the flat non-blocking
	// switch of the paper's testbed (every path bit-identical to earlier
	// releases).
	Topology Topology
	// Aggregation adds one in-rack aggregator LP per rack (see the package
	// comment): messages sent with ToAgg set are delivered to AggDeliver on
	// the aggregator's timeline instead of a machine NIC, and the
	// application answers through AggSend/AggFanout. Requires a rack
	// topology and an AggDeliver handler.
	Aggregation bool
	// AggDeliver receives every message addressed to rack aggregators
	// (Message.ToAgg); rack is the aggregator's rack index. It runs on the
	// aggregator LP's timeline, so state it touches must be partitioned per
	// rack to stay shard-safe.
	AggDeliver func(rack int, m Message)
	// PreemptQuantum > 0 makes egress transmission resumable: serialization
	// is charged in segments of at most this many wire bytes, and at each
	// segment boundary a strictly more urgent admissible queued message no
	// larger than the quantum (an "express" message) that is also smaller
	// than the in-flight remainder preempts the in-flight transmission,
	// which parks with its progress retained and resumes — ahead of its own
	// class, via priority inheritance — once the displacing burst drains
	// (the per-message overhead is charged only once). This models true
	// sub-message preemption, the upper bound that P3's slicing
	// approximates; 0 keeps the paper's semantics: an in-flight message
	// always finishes before the next scheduling choice. Segment timing
	// telescopes exactly, so a run in which no preemption fires is
	// bit-identical to PreemptQuantum 0.
	PreemptQuantum int64
}

// Topology describes a multi-rack interconnect: racks of RackSize machines
// on non-blocking ToR switches, joined by a core whose capacity is the
// rack's aggregate NIC rate divided by CoreOversub — the oversubscribed
// regime Parameter Hub identifies as the dominant constraint of rack-scale
// training. An inter-rack message serializes through its source rack's
// uplink and its destination rack's downlink (FIFO, store-and-forward, no
// per-message software overhead: switch ports, not hosts); intra-rack
// traffic never touches the core.
type Topology struct {
	// RackSize is the number of machines per rack; 0 disables the rack
	// model entirely (flat single switch). The last rack may be partial.
	RackSize int
	// CoreOversub is the core oversubscription ratio: rack r's
	// uplink/downlink serializes at its actual machine count (the last
	// rack may be partial) times BandwidthGbps, divided by CoreOversub.
	// 0 means a non-blocking core (the rack hop then only adds latency and
	// per-port serialization, equivalent to CoreOversub 1); values in
	// (0, 1) are explicit undersubscription — the core ports run faster
	// than the rack's aggregate NIC rate, so the per-port hop cost shrinks
	// below the 1:1 case; values above 1 oversubscribe. Negative values
	// are rejected.
	CoreOversub float64
	// CoreDelay is the one-way propagation latency of the core hop
	// (uplink to downlink); 0 defaults to the machine-level PropDelay.
	CoreDelay sim.Time
	// CoreSched names the sched.Discipline of every rack's uplink and
	// downlink port queue. "" keeps the blind FIFO of plain switch ports
	// (bit-identical to earlier releases); "fifo" runs the same global
	// arrival order through a sched.Queue (pinned bit-identical to "");
	// "p3"/"damped"/"tictac"/... make the core ports expedite the same
	// ranks the hosts do. Each port gets a fresh discipline instance,
	// seeded with its LP index for source-aware disciplines.
	CoreSched string
}

// Validate reports whether the topology's parameters are usable: a
// negative RackSize or CoreOversub is always an error, and CoreSched must
// name a registered scheduling discipline. The zero value is valid (flat
// network).
func (t Topology) Validate() error {
	if t.RackSize < 0 {
		return fmt.Errorf("netsim: negative rack size %d", t.RackSize)
	}
	if t.CoreOversub < 0 {
		return fmt.Errorf("netsim: negative core oversubscription %g (use values in (0,1) for an undersubscribed core, 0 or 1 for non-blocking)", t.CoreOversub)
	}
	if t.CoreSched != "" {
		if t.RackSize <= 0 {
			return fmt.Errorf("netsim: CoreSched %q without a rack topology (RackSize is 0, so there are no core ports to schedule)", t.CoreSched)
		}
		if _, err := sched.ByName(t.CoreSched); err != nil {
			return fmt.Errorf("netsim: core scheduler: %w", err)
		}
	}
	return nil
}

// coreDelay resolves the CoreDelay default against the machine-level
// propagation delay.
func (t Topology) coreDelay(propDelay sim.Time) sim.Time {
	if t.CoreDelay > 0 {
		return t.CoreDelay
	}
	return propDelay
}

// RackOf maps a machine to its rack.
func (t Topology) RackOf(machine int) int { return machine / t.RackSize }

// NumRacks is the rack count for n machines (the last rack may be partial).
func (t Topology) NumRacks(n int) int { return (n + t.RackSize - 1) / t.RackSize }

// RackMachines is the number of machines in rack r of an n-machine
// cluster: RackSize for full racks, fewer for a trailing partial rack.
func (t Topology) RackMachines(n, r int) int {
	if rest := n - r*t.RackSize; rest < t.RackSize {
		return rest
	}
	return t.RackSize
}

// NumLPs returns the logical-process count of the topology over n
// machines: one LP per machine, plus an uplink and a downlink LP per
// rack, plus — with Aggregation — one aggregator LP per rack.
func (c Config) NumLPs(n int) int {
	if c.Topology.RackSize <= 0 {
		return n
	}
	racks := c.Topology.NumRacks(n)
	lps := n + 2*racks
	if c.Aggregation {
		lps += racks
	}
	return lps
}

// Lookahead returns the minimum cross-LP latency of the topology — the
// conservative-execution bound to hand sim.NewParallel.
func (c Config) Lookahead() sim.Time {
	look := c.PropDelay
	if c.Topology.RackSize > 0 {
		if cd := c.Topology.coreDelay(c.PropDelay); cd < look {
			look = cd
		}
	}
	return look
}

// LPShards returns the LP-to-shard assignment for n machines over the
// given shard count: machines in contiguous blocks, rack-aligned when the
// topology has racks (a rack's machines, its uplink/downlink LPs and —
// with Aggregation — its aggregator LP share a shard, so only the core
// hop crosses shards).
func (c Config) LPShards(n, shards int) []int {
	lp := make([]int, c.NumLPs(n))
	if c.Topology.RackSize <= 0 {
		for m := 0; m < n; m++ {
			lp[m] = m * shards / n
		}
		return lp
	}
	racks := c.Topology.NumRacks(n)
	for m := 0; m < n; m++ {
		lp[m] = c.Topology.RackOf(m) * shards / racks
	}
	for r := 0; r < racks; r++ {
		s := r * shards / racks
		lp[n+2*r] = s
		lp[n+2*r+1] = s
		if c.Aggregation {
			lp[n+2*racks+r] = s
		}
	}
	return lp
}

// DefaultPreemptQuantum is the segment size used by the preemption ablation
// when preemptive transmission is enabled without an explicit quantum:
// 64 KiB is about a third of a default 50k-parameter slice, i.e. roughly
// 0.35 ms of serialization at the paper's 1.5 Gbps bottleneck bandwidth —
// the scheduling slack within which preemptive and non-preemptive timings
// of an already-sliced strategy are indistinguishable.
const DefaultPreemptQuantum = 64 << 10

// DefaultConfig returns the interconnect constants used for every experiment
// (DESIGN.md §5), with the bandwidth left for the caller to set.
func DefaultConfig(gbps float64) Config {
	return Config{
		BandwidthGbps:      gbps,
		PropDelay:          25 * sim.Microsecond,
		PerMsgOverhead:     8 * sim.Microsecond,
		HeaderBytes:        64,
		LocalBandwidthGbps: 160,
		LocalDelay:         5 * sim.Microsecond,
	}
}

// Message is one transfer unit. Application-level meaning travels in the
// Kind/Chunk/Iter/Src fields, interpreted by the cluster layer; netsim only
// reads From, To, Bytes and Priority.
type Message struct {
	From, To int   // machine indices (To is a rack index when ToAgg is set)
	Bytes    int64 // payload size (headers are added by the network)
	Priority int32 // lower is more urgent; interpreted by the egress discipline

	Kind  uint8 // application tag: push, notify, pull, data, ...
	Chunk int32 // application tag: chunk id
	Iter  int32 // application tag: iteration number
	Src   int32 // application tag: originating worker

	// ToAgg addresses the message to a rack aggregator: To names the rack,
	// and delivery is Config.AggDeliver on the aggregator LP instead of a
	// machine NIC. Requires Config.Aggregation.
	ToAgg bool
	// FromAgg marks a message originated by an aggregator (AggSend and
	// AggFanout set it): From is informational only — no egress was charged
	// for it, so no delivery-time credit refund is owed to any NIC.
	FromAgg bool
}

// msgDest is the flow key of a message for per-destination disciplines:
// the receiving machine, or — for aggregator-addressed messages — the rack
// encoded below the machine range so an aggregator flow never aliases a
// machine flow.
func msgDest(m Message) int32 {
	if m.ToAgg {
		return int32(-1 - m.To)
	}
	return int32(m.To)
}

// msgItem is the scheduler-visible view of a message at a core port queue;
// the destination key makes each (port, destination) pair one flow. (The
// port needs no field: a core queue belongs to one port LP, whose index is
// injected into source-aware disciplines via sched.ApplySource.)
func msgItem(m Message) sched.Item {
	return sched.Item{Priority: m.Priority, Bytes: m.Bytes, Dest: msgDest(m)}
}

// Handler receives fully delivered messages.
type Handler func(Message)

// txState is one resumable egress transmission: the message plus how much
// of its wire size (payload and header) has been serialized. With
// preemption disabled it is popped once and transmitted whole; with a
// quantum a preempted transmission is parked on its NIC carrying its
// progress and resumes from where it stopped.
type txState struct {
	msg Message
	// pri is the effective urgency class: it starts at msg.Priority and is
	// raised to the displacing class each time the transmission is parked
	// or passed over (priority inheritance). The inherited class is what
	// the resume rule compares against, so a parked tail yields only to
	// traffic strictly more urgent than what last displaced it — without
	// inheritance it would defer behind every future more-urgent arrival
	// (backward passes generate ever more urgent classes), and under a
	// comm-bound backlog that starves exactly the late-layer bulk tails
	// whose stalls already bind the iteration, inverting the "preemption
	// as upper bound" claim this models.
	pri  int32
	wire int64 // total wire bytes: payload + header
	sent int64 // wire bytes already serialized
}

// txItem is the scheduler-visible view of a transmission. It reads only
// fields that never change while the element is queued (pri is raised only
// while the element is parked outside the queue), so the view stays pure.
func txItem(t *txState) sched.Item {
	return sched.Item{Priority: t.pri, Bytes: t.msg.Bytes, Dest: msgDest(t.msg)}
}

// nicStats are one machine's transfer counters. They live on the nic —
// not globally — so that under the sharded engine each shard increments
// only counters it owns; Network's accessor methods sum them once the run
// is over.
type nicStats struct {
	msgsSent       int64
	bytesSent      int64
	msgsDelivered  int64
	bytesDelivered int64
	preemptions    int64
}

type nic struct {
	egress     *sched.Queue[*txState]
	egressBusy bool
	// parked holds preempted transmissions, most recently parked last. Each
	// entry was displaced by traffic strictly more urgent than its
	// (inherited) class, so the stack is always ordered by urgency with the
	// most urgent on top. Parked transmissions stay charged against any
	// credit window — their bytes are partially on the wire — and resume
	// before every queued element that is not strictly more urgent than
	// the class that displaced them: preemption costs a tail exactly the
	// displacing burst, never its position within its own class.
	parked     []*txState
	ingress    *pq.Queue[Message]
	ingressBsy bool
	stats      nicStats
}

// coreLink is one rack's uplink or downlink port: a store-and-forward
// queue serializing at the oversubscribed core rate, owned by its own LP.
// Without a CoreSched it is a blind FIFO slice (q/head); with one it is a
// per-flow sched.Queue (sq) running the named discipline — the
// priority-aware ToR. bytes/msgs count the payload traffic that transited
// the port (LP-owned, so shard-safe; summed after the run).
type coreLink struct {
	lp    int
	up    bool    // uplink (towards the core) or downlink (towards the rack)
	rate  float64 // Gbps, i.e. bits per nanosecond
	busy  bool
	q     []Message
	head  int
	sq    *sched.Queue[Message] // nil without a CoreSched
	bytes int64
	msgs  int64
}

// Network simulates the interconnect for n machines.
type Network struct {
	exec    sim.Exec
	procs   []sim.Proc // one per LP: machines, then rack up/down links
	cfg     Config
	n       int // machines
	nics    []nic
	ups     []coreLink // per rack (empty without a rack topology)
	downs   []coreLink
	aggBase int // first aggregator LP (n + 2*racks); -1 without aggregation
	deliver Handler
	rec     *trace.Recorder // optional
	sharded bool            // exec has >1 shard: no cross-LP credit feedback, no recorder

	// doneScratch is the reusable txState behind delivery-time credit
	// refunds (see pumpIngress): Done only reads the Item view, so one
	// scratch value serves every delivery instead of allocating a throwaway
	// per message. Safe because the single-shard engine is single-threaded
	// and Done does not retain its argument (the refund path is skipped
	// entirely under the sharded engine).
	doneScratch txState

	// mail is the single-shard path's canonical cross-LP mailbox: one heap
	// per destination LP ordered by (time, source LP, per-source send
	// order) — the same key the sharded engine's barrier injection sorts
	// by. Hop handoffs are buffered here and drained by one flush event per
	// transfer, so same-instant deliveries from different sources land in a
	// source-canonical order instead of global scheduling order, and an
	// N-shard run reproduces the 1-shard Result bit for bit. nil when
	// sharded (the engine itself injects canonically).
	mail     []arrivalHeap
	sendSeq  []uint64 // per source LP
	flushFns []func() // per destination LP, preallocated (hot path)
}

// arrival is one buffered cross-LP hop handoff awaiting canonical delivery.
type arrival struct {
	at  sim.Time
	src int32
	seq uint64
	fn  func()
}

// arrivalHeap is a binary min-heap of arrivals keyed by (at, src, seq).
type arrivalHeap []arrival

func arrivalLess(a, b arrival) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.src != b.src {
		return a.src < b.src
	}
	return a.seq < b.seq
}

func (h *arrivalHeap) push(a arrival) {
	*h = append(*h, a)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !arrivalLess(s[i], s[parent]) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *arrivalHeap) pop() arrival {
	s := *h
	top := s[0]
	last := len(s) - 1
	s[0] = s[last]
	s[last] = arrival{} // release the buffered closure
	s = s[:last]
	*h = s
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(s) && arrivalLess(s[l], s[min]) {
			min = l
		}
		if r < len(s) && arrivalLess(s[r], s[min]) {
			min = r
		}
		if min == i {
			break
		}
		s[i], s[min] = s[min], s[i]
		i = min
	}
	return top
}

// xfer carries one hop handoff from LP src to LP dst, delivering fn on
// dst's timeline at the absolute time at. Under a sharded exec the engine's
// barrier injection orders same-instant handoffs canonically; on the
// single-shard path the mailbox imposes the identical order, so the two
// paths agree bit for bit. Every hop goes through here — even same-shard
// and same-machine pairs — precisely to keep that tie order engine-
// independent.
func (nw *Network) xfer(src, dst int, at sim.Time, fn func()) {
	if nw.sharded {
		nw.exec.Cross(src, dst, at, fn)
		return
	}
	nw.sendSeq[src]++
	nw.mail[dst].push(arrival{at: at, src: int32(src), seq: nw.sendSeq[src], fn: fn})
	nw.procs[dst].At(at, nw.flushFns[dst])
}

// New creates a network of n machines on the given engine. handler is invoked
// (on the virtual clock) when a message has fully arrived. rec may be nil.
// It panics on an unknown egress discipline name — validate names from user
// input with sched.ByName first.
func New(eng *sim.Engine, n int, cfg Config, handler Handler, rec *trace.Recorder) *Network {
	return NewOnExec(sim.Single{Eng: eng}, n, cfg, handler, rec)
}

// NewOnExec creates a network of n machines on an Exec: machine i is LP i,
// and a rack topology adds an uplink LP (n+2r) and downlink LP (n+2r+1)
// per rack r, matching Config.LPShards. On a sharded exec it rejects
// credit-gated egress disciplines — their transmission window closes on a
// delivery-time refund to the sender, a zero-latency cross-shard edge the
// conservative engine cannot honor — and trace recorders, whose buckets
// are shared across machines.
func NewOnExec(x sim.Exec, n int, cfg Config, handler Handler, rec *trace.Recorder) *Network {
	if cfg.BandwidthGbps <= 0 {
		panic(fmt.Sprintf("netsim: bandwidth %v Gbps", cfg.BandwidthGbps))
	}
	if err := cfg.Topology.Validate(); err != nil {
		panic(err.Error())
	}
	if cfg.Aggregation {
		if cfg.Topology.RackSize <= 0 {
			panic("netsim: Aggregation needs a rack topology (Topology.RackSize > 0)")
		}
		if cfg.AggDeliver == nil {
			panic("netsim: Aggregation without an AggDeliver handler")
		}
	}
	if cfg.LocalBandwidthGbps <= 0 {
		cfg.LocalBandwidthGbps = 160
	}
	nw := &Network{exec: x, cfg: cfg, n: n, aggBase: -1, deliver: handler, rec: rec, sharded: x.Shards() > 1}
	if nw.sharded && rec != nil {
		panic("netsim: a trace.Recorder needs the single-shard engine (shared utilization buckets)")
	}
	// Ingress stays store-and-forward FIFO: reordering happens at the
	// sender, exactly as in the real system (the receiver drains the socket
	// in arrival order).
	fifoLess := func(a, b Message) bool { return false }
	nw.nics = make([]nic, n)
	for i := range nw.nics {
		disc := sched.ApplyProfile(sched.MustByName(cfg.Egress), cfg.Profile)
		// The owning machine's index seeds source-aware disciplines
		// (damped): every NIC resolves equal-rank ties toward a different
		// destination, de-synchronizing otherwise identical schedules.
		sched.ApplySource(disc, int32(i))
		q := sched.NewQueue(disc, txItem)
		if nw.sharded && q.Gated() {
			panic(fmt.Sprintf("netsim: credit-gated egress discipline %q needs the single-shard engine (delivery-time credit refunds are zero-latency cross-shard edges); run with shards=1", cfg.Egress))
		}
		nw.nics[i] = nic{
			egress:  q,
			ingress: pq.New(fifoLess),
		}
	}
	nw.procs = make([]sim.Proc, cfg.NumLPs(n))
	for lp := range nw.procs {
		nw.procs[lp] = x.Proc(lp)
	}
	if !nw.sharded {
		nLP := len(nw.procs)
		nw.mail = make([]arrivalHeap, nLP)
		nw.sendSeq = make([]uint64, nLP)
		nw.flushFns = make([]func(), nLP)
		for lp := 0; lp < nLP; lp++ {
			lp := lp
			nw.flushFns[lp] = func() { nw.mail[lp].pop().fn() }
		}
	}
	if t := cfg.Topology; t.RackSize > 0 {
		racks := t.NumRacks(n)
		if cfg.Aggregation {
			nw.aggBase = n + 2*racks
		}
		nw.ups = make([]coreLink, racks)
		nw.downs = make([]coreLink, racks)
		coreQueue := func(lp int) *sched.Queue[Message] {
			if t.CoreSched == "" {
				return nil
			}
			disc := sched.ApplyProfile(sched.MustByName(t.CoreSched), cfg.Profile)
			sched.ApplySource(disc, int32(lp))
			return sched.NewQueue(disc, msgItem)
		}
		for r := 0; r < racks; r++ {
			// Each port's rate is its rack's actual aggregate NIC rate — a
			// trailing partial rack's share of the core is proportional to
			// the machines it holds, not to the nominal RackSize.
			rate := float64(t.RackMachines(n, r)) * cfg.BandwidthGbps
			if t.CoreOversub > 0 {
				rate /= t.CoreOversub
			}
			nw.ups[r] = coreLink{lp: n + 2*r, up: true, rate: rate, sq: coreQueue(n + 2*r)}
			nw.downs[r] = coreLink{lp: n + 2*r + 1, rate: rate, sq: coreQueue(n + 2*r + 1)}
		}
	}
	return nw
}

// Stats accessors: totals over the per-machine counters. Only meaningful
// from the simulation's own events or after Run returns (under the sharded
// engine the counters are written by concurrent shards mid-run).

// MsgsSent is the number of messages handed to Send.
func (nw *Network) MsgsSent() int64 {
	return nw.sumStats(func(s *nicStats) int64 { return s.msgsSent })
}

// BytesSent is the payload volume handed to Send.
func (nw *Network) BytesSent() int64 {
	return nw.sumStats(func(s *nicStats) int64 { return s.bytesSent })
}

// MsgsDelivered is the number of fully delivered messages.
func (nw *Network) MsgsDelivered() int64 {
	return nw.sumStats(func(s *nicStats) int64 { return s.msgsDelivered })
}

// BytesDelivered is the payload volume fully delivered.
func (nw *Network) BytesDelivered() int64 {
	return nw.sumStats(func(s *nicStats) int64 { return s.bytesDelivered })
}

// Preemptions counts in-flight transmissions parked for a more urgent
// message (always 0 with PreemptQuantum 0).
func (nw *Network) Preemptions() int64 {
	return nw.sumStats(func(s *nicStats) int64 { return s.preemptions })
}

// CoreBytes is the total payload volume that serialized through the rack
// uplink and downlink ports — the core traffic the oversubscription ratio
// throttles, and the number in-rack aggregation exists to shrink. 0 on a
// flat network.
func (nw *Network) CoreBytes() int64 {
	var t int64
	for i := range nw.ups {
		t += nw.ups[i].bytes + nw.downs[i].bytes
	}
	return t
}

// CoreMsgs is the message count behind CoreBytes (each inter-rack message
// counts once per port it transits, i.e. normally twice).
func (nw *Network) CoreMsgs() int64 {
	var t int64
	for i := range nw.ups {
		t += nw.ups[i].msgs + nw.downs[i].msgs
	}
	return t
}

func (nw *Network) sumStats(f func(*nicStats) int64) int64 {
	var t int64
	for i := range nw.nics {
		t += f(&nw.nics[i].stats)
	}
	return t
}

// wireTime is the serialization time of a message in one direction.
func (nw *Network) wireTime(bytes int64) sim.Time {
	bits := float64(bytes+nw.cfg.HeaderBytes) * 8
	return nw.cfg.PerMsgOverhead + sim.Time(bits/nw.cfg.BandwidthGbps)
	// BandwidthGbps is Gbit/s = bit/ns, so bits/rate is already nanoseconds.
}

func (nw *Network) localTime(bytes int64) sim.Time {
	bits := float64(bytes+nw.cfg.HeaderBytes) * 8
	return nw.cfg.LocalDelay + sim.Time(bits/nw.cfg.LocalBandwidthGbps)
}

// Send queues m for transmission. Loopback messages (From == To) skip the
// NIC entirely, as a co-located worker and server communicate through shared
// memory in the real system. Aggregator-addressed messages (ToAgg, with To
// naming the rack) serialize through the sender's egress like any other
// traffic and are delivered to Config.AggDeliver.
func (nw *Network) Send(m Message) {
	if m.ToAgg && nw.aggBase < 0 {
		panic("netsim: ToAgg send without Config.Aggregation")
	}
	st := &nw.nics[m.From].stats
	st.msgsSent++
	st.bytesSent += m.Bytes
	if !m.ToAgg && m.From == m.To {
		nw.procs[m.From].After(nw.localTime(m.Bytes), func() {
			st.msgsDelivered++
			st.bytesDelivered += m.Bytes
			nw.deliver(m)
		})
		return
	}
	nw.nics[m.From].egress.Push(&txState{msg: m, pri: m.Priority, wire: m.Bytes + nw.cfg.HeaderBytes})
	nw.pumpEgress(m.From)
}

// destRack resolves the rack a message is ultimately headed for: the
// addressed rack for aggregator traffic, the destination machine's rack
// otherwise.
func (nw *Network) destRack(m Message) int {
	if m.ToAgg {
		return m.To
	}
	return nw.cfg.Topology.RackOf(m.To)
}

// forward hands a fully serialized message from machine `from` to the next
// hop: directly to the receiver's ingress (or its rack aggregator) after
// the propagation delay, or — for inter-rack traffic under a rack topology
// — into the source rack's uplink. Cross carries every hop, even when both
// LPs share a shard, so same-instant arrival order stays canonical for any
// shard count.
func (nw *Network) forward(from int, m Message) {
	now := nw.procs[from].Now()
	if t := nw.cfg.Topology; t.RackSize > 0 && t.RackOf(from) != nw.destRack(m) {
		l := &nw.ups[t.RackOf(from)]
		nw.xfer(from, l.lp, now+nw.cfg.PropDelay, func() { nw.coreEnqueue(l, m) })
		return
	}
	if m.ToAgg {
		nw.xfer(from, nw.aggBase+m.To, now+nw.cfg.PropDelay, func() { nw.deliverAgg(m) })
		return
	}
	nw.xfer(from, m.To, now+nw.cfg.PropDelay, func() { nw.arrive(m) })
}

// coreEnqueue queues m on a rack port — the blind FIFO slice or the
// discipline-ordered port queue — and pumps it.
func (nw *Network) coreEnqueue(l *coreLink, m Message) {
	if l.sq != nil {
		l.sq.Push(m)
	} else {
		l.q = append(l.q, m)
	}
	nw.pumpCore(l)
}

// pumpCore serializes the port's next message at the oversubscribed core
// rate and forwards it: an uplink hands off to the destination rack's
// downlink across the core, a downlink to the destination machine's
// ingress or — for aggregator traffic — its rack aggregator. Switch ports
// pay no per-message software overhead; header bytes still serialize.
// With a CoreSched the next message is the discipline's choice (a gated
// discipline's window opens and closes entirely on this LP — serialization
// start to serialization end — so core gating is shard-safe); without one
// it is strict arrival order.
func (nw *Network) pumpCore(l *coreLink) {
	if l.busy {
		return
	}
	var m Message
	if l.sq != nil {
		var ok bool
		m, ok = l.sq.PopReady()
		if !ok {
			return // empty, or every flow credit-blocked: Done below repumps
		}
	} else {
		if l.head == len(l.q) {
			return
		}
		m = l.q[l.head]
		l.head++
		if l.head == len(l.q) {
			l.q = l.q[:0]
			l.head = 0
		}
	}
	l.busy = true
	l.bytes += m.Bytes
	l.msgs++
	p := nw.procs[l.lp]
	bits := float64(m.Bytes+nw.cfg.HeaderBytes) * 8
	p.After(sim.Time(bits/l.rate), func() {
		l.busy = false
		if l.sq != nil {
			l.sq.Done(m)
		}
		if l.up {
			t := nw.cfg.Topology
			dst := &nw.downs[nw.destRack(m)]
			nw.xfer(l.lp, dst.lp, p.Now()+t.coreDelay(nw.cfg.PropDelay), func() { nw.coreEnqueue(dst, m) })
		} else if m.ToAgg {
			nw.xfer(l.lp, nw.aggBase+m.To, p.Now()+nw.cfg.PropDelay, func() { nw.deliverAgg(m) })
		} else {
			nw.xfer(l.lp, m.To, p.Now()+nw.cfg.PropDelay, func() { nw.arrive(m) })
		}
		nw.pumpCore(l)
	})
}

// deliverAgg hands an aggregator-addressed message to the application on
// the aggregator LP's timeline. Reaching the aggregator is full delivery
// for the sender's transmission window: the credit refund that pumpIngress
// performs for machine-addressed traffic happens here instead (single-
// shard only, exactly as there — aggregation composes with gated egress
// disciplines under the same shards=1 constraint).
func (nw *Network) deliverAgg(m Message) {
	if !nw.sharded && !m.FromAgg {
		nw.doneScratch = txState{msg: m, pri: m.Priority}
		nw.nics[m.From].egress.Done(&nw.doneScratch)
		nw.pumpEgress(m.From)
	}
	nw.cfg.AggDeliver(m.To, m)
}

// AggSend transmits m from rack's aggregator to machine m.To: the ToR
// hands it straight into the rack's uplink for inter-rack traffic (the
// reduced stream's only serialization points are the two core ports), or
// delivers it within the rack after a propagation delay plus the
// receiver's ingress. It must be called from an AggDeliver callback (the
// aggregator's LP timeline); the message is marked FromAgg — no NIC
// egress is charged, modelling a switch-side reduction engine.
func (nw *Network) AggSend(rack int, m Message) {
	m.ToAgg = false
	m.FromAgg = true
	lp := nw.aggBase + rack
	now := nw.procs[lp].Now()
	if nw.cfg.Topology.RackOf(m.To) == rack {
		nw.xfer(lp, m.To, now+nw.cfg.PropDelay, func() { nw.arrive(m) })
		return
	}
	l := &nw.ups[rack]
	nw.xfer(lp, l.lp, now+nw.cfg.PropDelay, func() { nw.coreEnqueue(l, m) })
}

// AggFanout replicates m from rack's aggregator to every machine of the
// rack except skip (pass -1 to reach all): the ToR replicates a broadcast
// at line rate, so each copy pays only propagation plus its own receiver's
// ingress serialization — the copies do not serialize against each other
// the way per-worker unicasts from a host NIC do. Must be called from an
// AggDeliver callback; copies are marked FromAgg like AggSend's.
func (nw *Network) AggFanout(rack int, m Message, skip int) {
	m.ToAgg = false
	m.FromAgg = true
	lp := nw.aggBase + rack
	now := nw.procs[lp].Now()
	lo := rack * nw.cfg.Topology.RackSize
	hi := lo + nw.cfg.Topology.RackMachines(nw.n, rack)
	for w := lo; w < hi; w++ {
		if w == skip {
			continue
		}
		c := m
		c.To = w
		nw.xfer(lp, w, now+nw.cfg.PropDelay, func() { nw.arrive(c) })
	}
}

func (nw *Network) pumpEgress(machine int) {
	n := &nw.nics[machine]
	p := nw.procs[machine]
	if n.egressBusy {
		return
	}
	// A parked (preempted) transmission resumes before anything that is
	// not strictly more urgent than the class that displaced it. The
	// resume path never consults the credit gate, so a parked tail cannot
	// wedge: when the window refuses everything queued, the tail — whose
	// bytes are already charged in flight — is what makes progress.
	if k := len(n.parked); k > 0 {
		tail := n.parked[k-1]
		if !n.egress.Preempts(tail) {
			n.parked = n.parked[:k-1]
			// Re-charge the resumed remainder against its flow's window
			// (a Parker discipline stopped counting it while parked).
			n.egress.Resume(tail)
			n.egressBusy = true
			nw.pumpSegment(machine, tail)
			return
		}
		// Deferred again: re-inherit the displacing class, so the tail
		// resumes after this burst too instead of deferring to every later
		// (ever more urgent) arrival. Urgency is the discipline's order —
		// under tictac a numerically larger class can be strictly more
		// urgent, and a raw integer comparison here would skip the
		// inheritance and reopen the unbounded-deferral starvation.
		if h, ok := n.egress.Peek(); ok && n.egress.Discipline().Less(txItem(h), txItem(tail)) {
			tail.pri = h.pri
		}
	}
	// PopReady respects a credit-gated discipline's transmission window (a
	// refused head stays queued until a delivery returns credit — see
	// pumpIngress, which repumps this egress) and skips a credit-blocked
	// flow's head in favour of the most urgent admissible other flow.
	tx, ok := n.egress.PopReady()
	if !ok {
		return
	}
	n.egressBusy = true
	if nw.cfg.PreemptQuantum > 0 {
		nw.pumpSegment(machine, tx)
		return
	}
	m := tx.msg
	start := p.Now()
	dur := nw.wireTime(m.Bytes)
	p.After(dur, func() {
		nw.rec.AddRange(machine, trace.Out, start, start+dur, m.Bytes+nw.cfg.HeaderBytes)
		n.egressBusy = false
		// Hand off to the next hop after propagation.
		nw.forward(machine, m)
		nw.pumpEgress(machine)
	})
}

// pumpSegment serializes tx's next segment of at most PreemptQuantum wire
// bytes. Segment boundaries are computed from cumulative byte offsets
// (serial time of sent+seg minus serial time of sent), so the durations
// telescope: a transmission that is never preempted completes at exactly
// the tick the whole-message path would produce, bit-identical for any
// quantum, and preemption changes only the interleaving, never the total
// serialization cost (the per-message overhead is charged once, on the
// first segment).
//
// At each segment boundary the most urgent admissible queued message
// preempts when it wins the exchange outright: it must be strictly more
// urgent than the in-flight transmission AND shorter than the
// transmission's remaining wire bytes. The second condition is the
// shortest-remaining-first test that makes preemption a genuine upper
// bound: the urgent message saves up to the whole remainder while the
// parked tail loses only the preemptor's (smaller) service time.
// Preempting for an equal-or-larger message — e.g. one uniform parameter
// slice overtaking another — trades a delay for an equal delay and only
// churns the schedule, so slices that P3 has already cut to the preemption
// scale pass untouched: slicing itself is the approximation of preemption,
// which is the paper's claim.
func (nw *Network) pumpSegment(machine int, tx *txState) {
	n := &nw.nics[machine]
	p := nw.procs[machine]
	seg := tx.wire - tx.sent
	if seg > nw.cfg.PreemptQuantum {
		seg = nw.cfg.PreemptQuantum
	}
	serialAt := func(sent int64) sim.Time {
		return sim.Time(float64(sent) * 8 / nw.cfg.BandwidthGbps)
	}
	dur := serialAt(tx.sent+seg) - serialAt(tx.sent)
	if tx.sent == 0 {
		dur = nw.cfg.PerMsgOverhead + dur
	}
	start := p.Now()
	p.After(dur, func() {
		nw.rec.AddRange(machine, trace.Out, start, start+dur, seg)
		tx.sent += seg
		if tx.sent == tx.wire {
			n.egressBusy = false
			m := tx.msg
			nw.forward(machine, m)
			nw.pumpEgress(machine)
			return
		}
		d := n.egress.Discipline()
		if pre, ok := n.egress.PopReadyIf(func(c *txState) bool {
			return d.Less(txItem(c), txItem(tx)) &&
				c.wire <= nw.cfg.PreemptQuantum && c.wire < tx.wire-tx.sent
		}); ok {
			// Inherit the displacing class unconditionally: pre is strictly
			// more urgent than tx by the discipline's order (the preemption
			// condition), which under tictac need not mean a numerically
			// smaller class.
			tx.pri = pre.pri
			n.parked = append(n.parked, tx)
			// A Parker discipline stops counting the parked remainder
			// against its flow's admission window until it resumes.
			n.egress.Park(tx)
			n.stats.preemptions++
			nw.pumpSegment(machine, pre)
			return
		}
		nw.pumpSegment(machine, tx)
	})
}

func (nw *Network) arrive(m Message) {
	n := &nw.nics[m.To]
	n.ingress.Push(m)
	nw.pumpIngress(m.To)
}

func (nw *Network) pumpIngress(machine int) {
	n := &nw.nics[machine]
	if n.ingressBsy || n.ingress.Len() == 0 {
		return
	}
	m := n.ingress.Pop()
	n.ingressBsy = true
	p := nw.procs[machine]
	start := p.Now()
	rx := nw.wireTime(m.Bytes)
	p.After(rx, func() {
		nw.rec.AddRange(machine, trace.In, start, start+rx, m.Bytes+nw.cfg.HeaderBytes)
		n.ingressBsy = false
		n.stats.msgsDelivered++
		n.stats.bytesDelivered += m.Bytes
		if !nw.sharded && !m.FromAgg {
			// Full delivery closes the sender's transmission window for
			// this message: return its credit and let the sender's egress
			// continue. (The scratch txState is fine: the credit refund
			// only reads the Bytes and Dest of the Item view, which the
			// message determines.) Under the sharded engine the sender
			// lives on another shard at zero latency — NewOnExec rejects
			// credit-gated disciplines there, and for ungated ones both
			// the refund and the pump are no-ops (an ungated egress never
			// idles with queued work), so skipping them changes nothing.
			// Aggregator-originated messages (FromAgg) charged no egress
			// and own no credit: their senders' windows closed at the
			// aggregator (deliverAgg).
			nw.doneScratch = txState{msg: m, pri: m.Priority}
			nw.nics[m.From].egress.Done(&nw.doneScratch)
			nw.pumpEgress(m.From)
		}
		nw.deliver(m)
		nw.pumpIngress(machine)
	})
}

// QueuedEgress reports how many messages wait in machine m's egress queue
// (not counting one in flight). Used by tests.
func (nw *Network) QueuedEgress(m int) int { return nw.nics[m].egress.Len() }
