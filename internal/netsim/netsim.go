// Package netsim models the cluster interconnect on the discrete-event
// clock: one full-duplex NIC per machine with independent egress and ingress
// serialization at a configurable rate — the simulated equivalent of the
// paper's `tc qdisc` rate limiting.
//
// Each direction is a single queueing server: transmitting a message occupies
// the sender's egress for overhead + size/rate, propagates, then occupies the
// receiver's ingress likewise (store-and-forward through an uncongested
// core — the paper's testbed is a small cluster on a non-blocking switch).
// The egress queue discipline is pluggable (Config.Egress names a
// sched.Discipline): "fifo" reproduces the baseline strategies, "p3" the
// worker-side producer/consumer mechanism of Section 4.2 — the
// highest-priority queued message is always transmitted next, and by
// default an in-flight message finishes before the next choice is made
// (preemption at message granularity). Config.PreemptQuantum makes egress
// transmission resumable below message granularity: an express message may
// park the in-flight transfer at a segment boundary and the remainder
// resumes later with progress retained — the true-preemption "what-if"
// upper bound that the paper's slicing approximates. Credit-gated
// disciplines see the true transmission window: a message is charged in
// flight from the moment its serialization starts until it is fully
// delivered at the receiver, so "credit:<bytes>" bounds the bytes in the
// pipe per NIC, ByteScheduler-style; the per-flow egress queue dispatches
// the most urgent admissible head, so one credit-starved destination never
// blocks traffic for the others.
package netsim

import (
	"fmt"

	"p3/internal/pq"
	"p3/internal/sched"
	"p3/internal/sim"
	"p3/internal/trace"
)

// Config holds the interconnect parameters.
type Config struct {
	// BandwidthGbps is the NIC rate per direction, in gigabits per second
	// (the unit of the paper's x axes).
	BandwidthGbps float64
	// PropDelay is the one-way propagation latency between machines.
	PropDelay sim.Time
	// PerMsgOverhead is the fixed software cost charged per message per
	// direction (syscall, serialization); it is what makes very small
	// parameter slices unprofitable (paper §5.7).
	PerMsgOverhead sim.Time
	// HeaderBytes is the wire framing added to every message.
	HeaderBytes int64
	// LocalBandwidthGbps is the loopback rate for messages between a worker
	// and the server co-located on the same machine (never crosses the NIC).
	LocalBandwidthGbps float64
	// LocalDelay is the fixed loopback latency.
	LocalDelay sim.Time
	// Egress names the egress queue discipline (sched registry): "" or
	// "fifo" for the baseline, "p3" for P3's priority queue, "rr",
	// "smallest", "credit[:bytes]", ... Each NIC gets a fresh discipline
	// instance, so stateful disciplines never share state across machines.
	Egress string
	// Profile optionally supplies model timing to profile-aware egress
	// disciplines (tictac); nil leaves them model-blind.
	Profile *sched.Profile
	// PreemptQuantum > 0 makes egress transmission resumable: serialization
	// is charged in segments of at most this many wire bytes, and at each
	// segment boundary a strictly more urgent admissible queued message no
	// larger than the quantum (an "express" message) that is also smaller
	// than the in-flight remainder preempts the in-flight transmission,
	// which parks with its progress retained and resumes — ahead of its own
	// class, via priority inheritance — once the displacing burst drains
	// (the per-message overhead is charged only once). This models true
	// sub-message preemption, the upper bound that P3's slicing
	// approximates; 0 keeps the paper's semantics: an in-flight message
	// always finishes before the next scheduling choice. Segment timing
	// telescopes exactly, so a run in which no preemption fires is
	// bit-identical to PreemptQuantum 0.
	PreemptQuantum int64
}

// DefaultPreemptQuantum is the segment size used by the preemption ablation
// when preemptive transmission is enabled without an explicit quantum:
// 64 KiB is about a third of a default 50k-parameter slice, i.e. roughly
// 0.35 ms of serialization at the paper's 1.5 Gbps bottleneck bandwidth —
// the scheduling slack within which preemptive and non-preemptive timings
// of an already-sliced strategy are indistinguishable.
const DefaultPreemptQuantum = 64 << 10

// DefaultConfig returns the interconnect constants used for every experiment
// (DESIGN.md §5), with the bandwidth left for the caller to set.
func DefaultConfig(gbps float64) Config {
	return Config{
		BandwidthGbps:      gbps,
		PropDelay:          25 * sim.Microsecond,
		PerMsgOverhead:     8 * sim.Microsecond,
		HeaderBytes:        64,
		LocalBandwidthGbps: 160,
		LocalDelay:         5 * sim.Microsecond,
	}
}

// Message is one transfer unit. Application-level meaning travels in the
// Kind/Chunk/Iter/Src fields, interpreted by the cluster layer; netsim only
// reads From, To, Bytes and Priority.
type Message struct {
	From, To int   // machine indices
	Bytes    int64 // payload size (headers are added by the network)
	Priority int32 // lower is more urgent; interpreted by the egress discipline

	Kind  uint8 // application tag: push, notify, pull, data, ...
	Chunk int32 // application tag: chunk id
	Iter  int32 // application tag: iteration number
	Src   int32 // application tag: originating worker
}

// msgItem is the scheduler-visible view of a message; the receiving machine
// is the destination key of per-destination disciplines, making each
// (sender, receiver) pair one flow of the egress queue. (The sending
// machine needs no field: an egress queue belongs to one NIC, whose index
// is injected into source-aware disciplines via sched.ApplySource.)
func msgItem(m Message) sched.Item {
	return sched.Item{Priority: m.Priority, Bytes: m.Bytes, Dest: int32(m.To)}
}

// Handler receives fully delivered messages.
type Handler func(Message)

// txState is one resumable egress transmission: the message plus how much
// of its wire size (payload and header) has been serialized. With
// preemption disabled it is popped once and transmitted whole; with a
// quantum a preempted transmission is parked on its NIC carrying its
// progress and resumes from where it stopped.
type txState struct {
	msg Message
	// pri is the effective urgency class: it starts at msg.Priority and is
	// raised to the displacing class each time the transmission is parked
	// or passed over (priority inheritance). The inherited class is what
	// the resume rule compares against, so a parked tail yields only to
	// traffic strictly more urgent than what last displaced it — without
	// inheritance it would defer behind every future more-urgent arrival
	// (backward passes generate ever more urgent classes), and under a
	// comm-bound backlog that starves exactly the late-layer bulk tails
	// whose stalls already bind the iteration, inverting the "preemption
	// as upper bound" claim this models.
	pri  int32
	wire int64 // total wire bytes: payload + header
	sent int64 // wire bytes already serialized
}

// txItem is the scheduler-visible view of a transmission. It reads only
// fields that never change while the element is queued (pri is raised only
// while the element is parked outside the queue), so the view stays pure.
func txItem(t *txState) sched.Item {
	return sched.Item{Priority: t.pri, Bytes: t.msg.Bytes, Dest: int32(t.msg.To)}
}

type nic struct {
	egress     *sched.Queue[*txState]
	egressBusy bool
	// parked holds preempted transmissions, most recently parked last. Each
	// entry was displaced by traffic strictly more urgent than its
	// (inherited) class, so the stack is always ordered by urgency with the
	// most urgent on top. Parked transmissions stay charged against any
	// credit window — their bytes are partially on the wire — and resume
	// before every queued element that is not strictly more urgent than
	// the class that displaced them: preemption costs a tail exactly the
	// displacing burst, never its position within its own class.
	parked     []*txState
	ingress    *pq.Queue[Message]
	ingressBsy bool
}

// Network simulates the interconnect for n machines.
type Network struct {
	eng     *sim.Engine
	cfg     Config
	nics    []nic
	deliver Handler
	rec     *trace.Recorder // optional

	// Stats, for conservation checks and reporting.
	MsgsSent       int64
	BytesSent      int64
	MsgsDelivered  int64
	BytesDelivered int64
	// Preemptions counts in-flight transmissions parked for a more urgent
	// message (always 0 with PreemptQuantum 0).
	Preemptions int64

	// doneScratch is the reusable txState behind delivery-time credit
	// refunds (see pumpIngress): Done only reads the Item view, so one
	// scratch value serves every delivery instead of allocating a throwaway
	// per message. Safe because the engine is single-threaded and Done does
	// not retain its argument.
	doneScratch txState
}

// New creates a network of n machines on the given engine. handler is invoked
// (on the virtual clock) when a message has fully arrived. rec may be nil.
// It panics on an unknown egress discipline name — validate names from user
// input with sched.ByName first.
func New(eng *sim.Engine, n int, cfg Config, handler Handler, rec *trace.Recorder) *Network {
	if cfg.BandwidthGbps <= 0 {
		panic(fmt.Sprintf("netsim: bandwidth %v Gbps", cfg.BandwidthGbps))
	}
	if cfg.LocalBandwidthGbps <= 0 {
		cfg.LocalBandwidthGbps = 160
	}
	nw := &Network{eng: eng, cfg: cfg, deliver: handler, rec: rec}
	// Ingress stays store-and-forward FIFO: reordering happens at the
	// sender, exactly as in the real system (the receiver drains the socket
	// in arrival order).
	fifoLess := func(a, b Message) bool { return false }
	nw.nics = make([]nic, n)
	for i := range nw.nics {
		disc := sched.ApplyProfile(sched.MustByName(cfg.Egress), cfg.Profile)
		// The owning machine's index seeds source-aware disciplines
		// (damped): every NIC resolves equal-rank ties toward a different
		// destination, de-synchronizing otherwise identical schedules.
		sched.ApplySource(disc, int32(i))
		nw.nics[i] = nic{
			egress:  sched.NewQueue(disc, txItem),
			ingress: pq.New(fifoLess),
		}
	}
	return nw
}

// wireTime is the serialization time of a message in one direction.
func (nw *Network) wireTime(bytes int64) sim.Time {
	bits := float64(bytes+nw.cfg.HeaderBytes) * 8
	return nw.cfg.PerMsgOverhead + sim.Time(bits/nw.cfg.BandwidthGbps)
	// BandwidthGbps is Gbit/s = bit/ns, so bits/rate is already nanoseconds.
}

func (nw *Network) localTime(bytes int64) sim.Time {
	bits := float64(bytes+nw.cfg.HeaderBytes) * 8
	return nw.cfg.LocalDelay + sim.Time(bits/nw.cfg.LocalBandwidthGbps)
}

// Send queues m for transmission. Loopback messages (From == To) skip the
// NIC entirely, as a co-located worker and server communicate through shared
// memory in the real system.
func (nw *Network) Send(m Message) {
	nw.MsgsSent++
	nw.BytesSent += m.Bytes
	if m.From == m.To {
		nw.eng.After(nw.localTime(m.Bytes), func() {
			nw.MsgsDelivered++
			nw.BytesDelivered += m.Bytes
			nw.deliver(m)
		})
		return
	}
	nw.nics[m.From].egress.Push(&txState{msg: m, pri: m.Priority, wire: m.Bytes + nw.cfg.HeaderBytes})
	nw.pumpEgress(m.From)
}

func (nw *Network) pumpEgress(machine int) {
	n := &nw.nics[machine]
	if n.egressBusy {
		return
	}
	// A parked (preempted) transmission resumes before anything that is
	// not strictly more urgent than the class that displaced it. The
	// resume path never consults the credit gate, so a parked tail cannot
	// wedge: when the window refuses everything queued, the tail — whose
	// bytes are already charged in flight — is what makes progress.
	if k := len(n.parked); k > 0 {
		tail := n.parked[k-1]
		if !n.egress.Preempts(tail) {
			n.parked = n.parked[:k-1]
			// Re-charge the resumed remainder against its flow's window
			// (a Parker discipline stopped counting it while parked).
			n.egress.Resume(tail)
			n.egressBusy = true
			nw.pumpSegment(machine, tail)
			return
		}
		// Deferred again: re-inherit the displacing class, so the tail
		// resumes after this burst too instead of deferring to every later
		// (ever more urgent) arrival. Urgency is the discipline's order —
		// under tictac a numerically larger class can be strictly more
		// urgent, and a raw integer comparison here would skip the
		// inheritance and reopen the unbounded-deferral starvation.
		if h, ok := n.egress.Peek(); ok && n.egress.Discipline().Less(txItem(h), txItem(tail)) {
			tail.pri = h.pri
		}
	}
	// PopReady respects a credit-gated discipline's transmission window (a
	// refused head stays queued until a delivery returns credit — see
	// pumpIngress, which repumps this egress) and skips a credit-blocked
	// flow's head in favour of the most urgent admissible other flow.
	tx, ok := n.egress.PopReady()
	if !ok {
		return
	}
	n.egressBusy = true
	if nw.cfg.PreemptQuantum > 0 {
		nw.pumpSegment(machine, tx)
		return
	}
	m := tx.msg
	start := nw.eng.Now()
	dur := nw.wireTime(m.Bytes)
	nw.eng.After(dur, func() {
		nw.rec.AddRange(machine, trace.Out, start, start+dur, m.Bytes+nw.cfg.HeaderBytes)
		n.egressBusy = false
		// Hand off to the receiver after propagation.
		nw.eng.After(nw.cfg.PropDelay, func() { nw.arrive(m) })
		nw.pumpEgress(machine)
	})
}

// pumpSegment serializes tx's next segment of at most PreemptQuantum wire
// bytes. Segment boundaries are computed from cumulative byte offsets
// (serial time of sent+seg minus serial time of sent), so the durations
// telescope: a transmission that is never preempted completes at exactly
// the tick the whole-message path would produce, bit-identical for any
// quantum, and preemption changes only the interleaving, never the total
// serialization cost (the per-message overhead is charged once, on the
// first segment).
//
// At each segment boundary the most urgent admissible queued message
// preempts when it wins the exchange outright: it must be strictly more
// urgent than the in-flight transmission AND shorter than the
// transmission's remaining wire bytes. The second condition is the
// shortest-remaining-first test that makes preemption a genuine upper
// bound: the urgent message saves up to the whole remainder while the
// parked tail loses only the preemptor's (smaller) service time.
// Preempting for an equal-or-larger message — e.g. one uniform parameter
// slice overtaking another — trades a delay for an equal delay and only
// churns the schedule, so slices that P3 has already cut to the preemption
// scale pass untouched: slicing itself is the approximation of preemption,
// which is the paper's claim.
func (nw *Network) pumpSegment(machine int, tx *txState) {
	n := &nw.nics[machine]
	seg := tx.wire - tx.sent
	if seg > nw.cfg.PreemptQuantum {
		seg = nw.cfg.PreemptQuantum
	}
	serialAt := func(sent int64) sim.Time {
		return sim.Time(float64(sent) * 8 / nw.cfg.BandwidthGbps)
	}
	dur := serialAt(tx.sent+seg) - serialAt(tx.sent)
	if tx.sent == 0 {
		dur = nw.cfg.PerMsgOverhead + dur
	}
	start := nw.eng.Now()
	nw.eng.After(dur, func() {
		nw.rec.AddRange(machine, trace.Out, start, start+dur, seg)
		tx.sent += seg
		if tx.sent == tx.wire {
			n.egressBusy = false
			m := tx.msg
			nw.eng.After(nw.cfg.PropDelay, func() { nw.arrive(m) })
			nw.pumpEgress(machine)
			return
		}
		d := n.egress.Discipline()
		if pre, ok := n.egress.PopReadyIf(func(c *txState) bool {
			return d.Less(txItem(c), txItem(tx)) &&
				c.wire <= nw.cfg.PreemptQuantum && c.wire < tx.wire-tx.sent
		}); ok {
			// Inherit the displacing class unconditionally: pre is strictly
			// more urgent than tx by the discipline's order (the preemption
			// condition), which under tictac need not mean a numerically
			// smaller class.
			tx.pri = pre.pri
			n.parked = append(n.parked, tx)
			// A Parker discipline stops counting the parked remainder
			// against its flow's admission window until it resumes.
			n.egress.Park(tx)
			nw.Preemptions++
			nw.pumpSegment(machine, pre)
			return
		}
		nw.pumpSegment(machine, tx)
	})
}

func (nw *Network) arrive(m Message) {
	n := &nw.nics[m.To]
	n.ingress.Push(m)
	nw.pumpIngress(m.To)
}

func (nw *Network) pumpIngress(machine int) {
	n := &nw.nics[machine]
	if n.ingressBsy || n.ingress.Len() == 0 {
		return
	}
	m := n.ingress.Pop()
	n.ingressBsy = true
	start := nw.eng.Now()
	rx := nw.wireTime(m.Bytes)
	nw.eng.After(rx, func() {
		nw.rec.AddRange(machine, trace.In, start, start+rx, m.Bytes+nw.cfg.HeaderBytes)
		n.ingressBsy = false
		nw.MsgsDelivered++
		nw.BytesDelivered += m.Bytes
		// Full delivery closes the sender's transmission window for this
		// message: return its credit and let the sender's egress continue.
		// (The scratch txState is fine: the credit refund only reads the
		// Bytes and Dest of the Item view, which the message determines.)
		nw.doneScratch = txState{msg: m, pri: m.Priority}
		nw.nics[m.From].egress.Done(&nw.doneScratch)
		nw.pumpEgress(m.From)
		nw.deliver(m)
		nw.pumpIngress(machine)
	})
}

// QueuedEgress reports how many messages wait in machine m's egress queue
// (not counting one in flight). Used by tests.
func (nw *Network) QueuedEgress(m int) int { return nw.nics[m].egress.Len() }
