// Package netsim models the cluster interconnect on the discrete-event
// clock: one full-duplex NIC per machine with independent egress and ingress
// serialization at a configurable rate — the simulated equivalent of the
// paper's `tc qdisc` rate limiting.
//
// Each direction is a single queueing server: transmitting a message occupies
// the sender's egress for overhead + size/rate, propagates, then occupies the
// receiver's ingress likewise (store-and-forward through an uncongested
// core — the paper's testbed is a small cluster on a non-blocking switch).
// The egress queue discipline is pluggable (Config.Egress names a
// sched.Discipline): "fifo" reproduces the baseline strategies, "p3" the
// worker-side producer/consumer mechanism of Section 4.2 — the
// highest-priority queued message is always transmitted next, and by
// default an in-flight message finishes before the next choice is made
// (preemption at message granularity). Config.PreemptQuantum makes egress
// transmission resumable below message granularity: an express message may
// park the in-flight transfer at a segment boundary and the remainder
// resumes later with progress retained — the true-preemption "what-if"
// upper bound that the paper's slicing approximates. Credit-gated
// disciplines see the true transmission window: a message is charged in
// flight from the moment its serialization starts until it is fully
// delivered at the receiver, so "credit:<bytes>" bounds the bytes in the
// pipe per NIC, ByteScheduler-style; the per-flow egress queue dispatches
// the most urgent admissible head, so one credit-starved destination never
// blocks traffic for the others.
//
// # Window-relaxed host credit
//
// A host credit refund is not instantaneous: when a message is fully
// delivered, the refund lands back on the sender's LP exactly one
// lookahead (Config.Lookahead) later — the width of the conservative
// engine's barrier window. Refunds therefore quantize to window
// boundaries: credit is returned conservatively late, by at most one
// lookahead, and never early. That single relaxation is what makes
// credit-gated egress disciplines shard-safe — the refund is an ordinary
// cross-LP edge satisfying the lookahead bound instead of a zero-latency
// back-edge — so credit/credit-adaptive runs shard like every other
// discipline, and an N-shard run reproduces the 1-shard Result bit for
// bit (both paths schedule the refund through the same canonical transfer
// order). Ungated disciplines schedule no refund events at all, keeping
// their schedules (and goldens) untouched.
//
// # Rack topologies, core scheduling, and in-rack aggregation
//
// Topology arranges machines into racks behind an oversubscribed core:
// each rack owns an uplink and a downlink port LP that store-and-forward
// inter-rack messages at the rack's aggregate NIC rate divided by
// CoreOversub. By default those ports are blind FIFO — the regime where
// host-egress priorities die at the ToR, because the core serializes in
// arrival order whatever rank the hosts assigned. Topology.CoreSched gives
// the ports a real sched.Queue instead: each port runs its own fresh
// discipline instance (seeded with the port's LP index for source-aware
// ranks, profile-applied like a host NIC), so p3/tictac/damped ranks
// survive into the core. At a ToR port a rank means the same thing it
// means at a host NIC — "which queued message does the wire take next" —
// but the port sees every flow of its rack at once, which is exactly the
// aggregate view host egress lacks. CoreSched "fifo" dequeues in global
// arrival order (ties by insertion) and is pinned bit-identical to the
// blind FIFO path.
//
// # Spine tier
//
// Topology.Pods adds a second switching tier: the racks are grouped into
// Pods equal pods, and each pod owns a spine uplink and downlink port LP
// above its ToRs, serializing at the pod's aggregate ToR-uplink rate
// divided by SpineOversub. Traffic between racks of the same pod turns
// around below the spine (rack uplink → rack downlink, exactly the
// single-tier path — a Pods=1 topology is bit-identical to no spine);
// only inter-pod traffic transits the spine ports (rack uplink → spine
// uplink → spine downlink → rack downlink, paying SpineDelay across the
// spine). SpineSched puts a sched.Queue on the spine ports just like
// CoreSched does on the ToR ports. Spine port LPs live on the shard of
// their pod's first rack, and every spine hop pays at least the lookahead
// bound, so sharded runs stay bit-identical.
//
// # Tiered aggregation
//
// Config.Aggregation adds one in-rack aggregator LP per rack — the
// Parameter Hub design point — and, when the topology has a spine tier,
// one pod aggregator LP per pod. The aggregators are the application's
// hook, not a policy: messages addressed to one (Message.ToAgg, with To
// naming the rack or pod and AggTier the tier) are handed to
// Config.AggDeliver on that aggregator's timeline, and the application
// replies with AggSend (one reduced stream toward a machine or another
// aggregator) or AggFanout (line-rate broadcast replication at the tier:
// a rack aggregator fans to its rack's machines; a pod aggregator fans one
// copy per rack of the pod, each re-entering the rack's downlink as
// rack-aggregator traffic). Aggregator ingest is free by default — it
// models a switch/ASIC-side reduction engine, not a host NIC —
// but Config.AggReduceGBps gives the reduction engine a finite rate:
// payloads then queue FIFO at the aggregator and are reduced at
// AggReduceGBps bytes per second before AggDeliver sees them, exposing
// where the reduction ASIC (not the wire) becomes the bottleneck. Every
// aggregator hop goes through the canonical cross-LP transfer path (xfer)
// with at least PropDelay of latency, so the lookahead bound is unchanged
// and an N-shard run reproduces the 1-shard Result bit for bit; each
// aggregator LP lives on its rack's (or pod's first rack's) shard, so
// only core and spine hops cross shards, exactly as without aggregation.
package netsim

import (
	"fmt"

	"p3/internal/pq"
	"p3/internal/sched"
	"p3/internal/sim"
	"p3/internal/trace"
)

// Config holds the interconnect parameters.
type Config struct {
	// BandwidthGbps is the NIC rate per direction, in gigabits per second
	// (the unit of the paper's x axes).
	BandwidthGbps float64
	// PropDelay is the one-way propagation latency between machines.
	PropDelay sim.Time
	// PerMsgOverhead is the fixed software cost charged per message per
	// direction (syscall, serialization); it is what makes very small
	// parameter slices unprofitable (paper §5.7).
	PerMsgOverhead sim.Time
	// HeaderBytes is the wire framing added to every message.
	HeaderBytes int64
	// LocalBandwidthGbps is the loopback rate for messages between a worker
	// and the server co-located on the same machine (never crosses the NIC).
	LocalBandwidthGbps float64
	// LocalDelay is the fixed loopback latency.
	LocalDelay sim.Time
	// Egress names the egress queue discipline (sched registry): "" or
	// "fifo" for the baseline, "p3" for P3's priority queue, "rr",
	// "smallest", "credit[:bytes]", ... Each NIC gets a fresh discipline
	// instance, so stateful disciplines never share state across machines.
	Egress string
	// Profile optionally supplies model timing to profile-aware egress
	// disciplines (tictac); nil leaves them model-blind.
	Profile *sched.Profile
	// Topology optionally arranges the machines into racks behind an
	// oversubscribed core. The zero value keeps the flat non-blocking
	// switch of the paper's testbed (every path bit-identical to earlier
	// releases).
	Topology Topology
	// Aggregation adds one in-rack aggregator LP per rack — and, when the
	// topology has a spine tier (Topology.Pods), one pod aggregator LP per
	// pod (see the package comment): messages sent with ToAgg set are
	// delivered to AggDeliver on the addressed aggregator's timeline instead
	// of a machine NIC, and the application answers through AggSend/
	// AggFanout. Requires a rack topology and an AggDeliver handler.
	Aggregation bool
	// AggDeliver receives every message addressed to an aggregator
	// (Message.ToAgg): tier is the aggregation tier (TierRack or TierPod)
	// and idx the rack or pod index. It runs on that aggregator LP's
	// timeline, so state it touches must be partitioned per aggregator to
	// stay shard-safe.
	AggDeliver func(tier, idx int, m Message)
	// AggDrop, if set, receives every aggregator-addressed message that
	// arrives while the addressed aggregator is down (ScheduleAggOutage),
	// instead of AggDeliver — including messages already queued in the
	// reduce engine when the outage begins. It runs on the aggregator LP's
	// timeline, like AggDeliver. nil drops silently.
	AggDrop func(tier, idx int, m Message)
	// AggReduceGBps is the aggregator reduction capacity in gigabytes per
	// second (== bytes per nanosecond): each aggregator LP ingests the
	// payloads addressed to it through a FIFO reduce engine at this rate, so
	// a rack's worth of concurrent gradient streams can queue at the ToR's
	// reduction ASIC just like they queue at a link. 0 models a free
	// (line-rate, zero-cost) reduction engine — bit-identical to earlier
	// releases. Credit refunds still happen at aggregator arrival: the
	// sender's transmission window covers the wire, not the reduce queue.
	AggReduceGBps float64
	// PreemptQuantum > 0 makes egress transmission resumable: serialization
	// is charged in segments of at most this many wire bytes, and at each
	// segment boundary a strictly more urgent admissible queued message no
	// larger than the quantum (an "express" message) that is also smaller
	// than the in-flight remainder preempts the in-flight transmission,
	// which parks with its progress retained and resumes — ahead of its own
	// class, via priority inheritance — once the displacing burst drains
	// (the per-message overhead is charged only once). This models true
	// sub-message preemption, the upper bound that P3's slicing
	// approximates; 0 keeps the paper's semantics: an in-flight message
	// always finishes before the next scheduling choice. Segment timing
	// telescopes exactly, so a run in which no preemption fires is
	// bit-identical to PreemptQuantum 0.
	PreemptQuantum int64
}

// Topology describes a multi-rack interconnect: racks of RackSize machines
// on non-blocking ToR switches, joined by a core whose capacity is the
// rack's aggregate NIC rate divided by CoreOversub — the oversubscribed
// regime Parameter Hub identifies as the dominant constraint of rack-scale
// training. An inter-rack message serializes through its source rack's
// uplink and its destination rack's downlink (FIFO, store-and-forward, no
// per-message software overhead: switch ports, not hosts); intra-rack
// traffic never touches the core.
type Topology struct {
	// RackSize is the number of machines per rack; 0 disables the rack
	// model entirely (flat single switch). The last rack may be partial.
	RackSize int
	// CoreOversub is the core oversubscription ratio: rack r's
	// uplink/downlink serializes at its actual machine count (the last
	// rack may be partial) times BandwidthGbps, divided by CoreOversub.
	// 0 means a non-blocking core (the rack hop then only adds latency and
	// per-port serialization, equivalent to CoreOversub 1); values in
	// (0, 1) are explicit undersubscription — the core ports run faster
	// than the rack's aggregate NIC rate, so the per-port hop cost shrinks
	// below the 1:1 case; values above 1 oversubscribe. Negative values
	// are rejected.
	CoreOversub float64
	// CoreDelay is the one-way propagation latency of the core hop
	// (uplink to downlink); 0 defaults to the machine-level PropDelay.
	CoreDelay sim.Time
	// CoreSched names the sched.Discipline of every rack's uplink and
	// downlink port queue. "" keeps the blind FIFO of plain switch ports
	// (bit-identical to earlier releases); "fifo" runs the same global
	// arrival order through a sched.Queue (pinned bit-identical to "");
	// "p3"/"damped"/"tictac"/... make the core ports expedite the same
	// ranks the hosts do. Each port gets a fresh discipline instance,
	// seeded with its LP index for source-aware disciplines.
	CoreSched string
	// Pods groups the racks into this many equal pods joined by a spine
	// tier: each pod owns a spine uplink and downlink port above its ToRs,
	// and only inter-pod traffic transits them (intra-pod inter-rack
	// traffic turns around below the spine). 0 disables the spine tier
	// (single-tier core, bit-identical to earlier releases); a Pods=1
	// topology builds the spine LPs but routes nothing through them, so it
	// is also bit-identical. Requires RackSize > 0, and the pod count must
	// divide the rack count evenly (checked by ValidateFor, where the
	// machine count is known).
	Pods int
	// SpineOversub is the spine oversubscription ratio relative to the
	// pod's aggregate ToR-uplink rate: pod p's spine uplink/downlink
	// serializes at (pod's machine count) * BandwidthGbps / CoreOversub /
	// SpineOversub. 0 or 1 is a non-blocking spine; values in (0, 1) are
	// explicit undersubscription (the spine runs faster than the pod's
	// aggregate uplink rate); negative values are rejected.
	SpineOversub float64
	// SpineDelay is the one-way propagation latency of the inter-pod spine
	// hop (spine uplink to spine downlink); 0 defaults to the core delay.
	SpineDelay sim.Time
	// SpineSched names the sched.Discipline of every pod's spine port
	// queue, exactly as CoreSched does for the ToR ports. "" keeps blind
	// FIFO.
	SpineSched string
}

// Validate reports whether the topology's parameters are usable: a
// negative RackSize, CoreOversub, Pods or SpineOversub is always an
// error, CoreSched/SpineSched must name registered scheduling
// disciplines, and the spine knobs require a rack topology (and each
// other). The zero value is valid (flat network). ValidateFor addition-
// ally checks the machine-count-dependent constraint that the pods
// divide the racks evenly.
func (t Topology) Validate() error {
	if t.RackSize < 0 {
		return fmt.Errorf("netsim: negative rack size %d", t.RackSize)
	}
	if t.CoreOversub < 0 {
		return fmt.Errorf("netsim: negative core oversubscription %g (use values in (0,1) for an undersubscribed core, 0 or 1 for non-blocking)", t.CoreOversub)
	}
	if t.CoreSched != "" {
		if t.RackSize <= 0 {
			return fmt.Errorf("netsim: CoreSched %q without a rack topology (RackSize is 0, so there are no core ports to schedule)", t.CoreSched)
		}
		if _, err := sched.ByName(t.CoreSched); err != nil {
			return fmt.Errorf("netsim: core scheduler: %w", err)
		}
	}
	if t.Pods < 0 {
		return fmt.Errorf("netsim: negative pod count %d", t.Pods)
	}
	if t.Pods > 0 && t.RackSize <= 0 {
		return fmt.Errorf("netsim: spine tier (Pods %d) without a rack topology (RackSize is 0, so there are no racks to group into pods)", t.Pods)
	}
	if t.SpineOversub < 0 {
		return fmt.Errorf("netsim: negative spine oversubscription %g (use values in (0,1) for an undersubscribed spine, 0 or 1 for non-blocking)", t.SpineOversub)
	}
	if t.Pods == 0 {
		if t.SpineOversub > 0 {
			return fmt.Errorf("netsim: SpineOversub %g without a spine tier (Pods is 0)", t.SpineOversub)
		}
		if t.SpineDelay > 0 {
			return fmt.Errorf("netsim: SpineDelay without a spine tier (Pods is 0)")
		}
		if t.SpineSched != "" {
			return fmt.Errorf("netsim: SpineSched %q without a spine tier (Pods is 0, so there are no spine ports to schedule)", t.SpineSched)
		}
	}
	if t.SpineSched != "" {
		if _, err := sched.ByName(t.SpineSched); err != nil {
			return fmt.Errorf("netsim: spine scheduler: %w", err)
		}
	}
	return nil
}

// ValidateFor runs Validate plus the machine-count-dependent checks: with
// a spine tier, the pod count must divide the rack count evenly (equal
// pods keep the spine port rates uniform and the routing arithmetic-only).
func (t Topology) ValidateFor(n int) error {
	if err := t.Validate(); err != nil {
		return err
	}
	if t.Pods > 0 {
		racks := t.NumRacks(n)
		if racks%t.Pods != 0 {
			return fmt.Errorf("netsim: %d racks (%d machines / rack size %d) do not divide evenly into %d pods", racks, n, t.RackSize, t.Pods)
		}
	}
	return nil
}

// coreDelay resolves the CoreDelay default against the machine-level
// propagation delay.
func (t Topology) coreDelay(propDelay sim.Time) sim.Time {
	if t.CoreDelay > 0 {
		return t.CoreDelay
	}
	return propDelay
}

// spineDelay resolves the SpineDelay default against the (resolved) core
// delay.
func (t Topology) spineDelay(propDelay sim.Time) sim.Time {
	if t.SpineDelay > 0 {
		return t.SpineDelay
	}
	return t.coreDelay(propDelay)
}

// RackOf maps a machine to its rack.
func (t Topology) RackOf(machine int) int { return machine / t.RackSize }

// NumRacks is the rack count for n machines (the last rack may be partial).
func (t Topology) NumRacks(n int) int { return (n + t.RackSize - 1) / t.RackSize }

// RackMachines is the number of machines in rack r of an n-machine
// cluster: RackSize for full racks, fewer for a trailing partial rack.
func (t Topology) RackMachines(n, r int) int {
	if rest := n - r*t.RackSize; rest < t.RackSize {
		return rest
	}
	return t.RackSize
}

// NumLPs returns the logical-process count of the topology over n
// machines: one LP per machine, plus an uplink and a downlink LP per
// rack, plus — with a spine tier — a spine uplink and downlink LP per
// pod, plus — with Aggregation — one aggregator LP per rack (and per pod
// under a spine tier).
func (c Config) NumLPs(n int) int {
	if c.Topology.RackSize <= 0 {
		return n
	}
	racks := c.Topology.NumRacks(n)
	lps := n + 2*racks + 2*c.Topology.Pods
	if c.Aggregation {
		lps += racks + c.Topology.Pods
	}
	return lps
}

// Lookahead returns the minimum cross-LP latency of the topology — the
// conservative-execution bound to hand sim.NewParallel.
func (c Config) Lookahead() sim.Time {
	look := c.PropDelay
	if c.Topology.RackSize > 0 {
		if cd := c.Topology.coreDelay(c.PropDelay); cd < look {
			look = cd
		}
		if c.Topology.Pods > 0 {
			if sd := c.Topology.spineDelay(c.PropDelay); sd < look {
				look = sd
			}
		}
	}
	return look
}

// LPShards returns the LP-to-shard assignment for n machines over the
// given shard count: machines in contiguous blocks, rack-aligned when the
// topology has racks (a rack's machines, its uplink/downlink LPs and —
// with Aggregation — its aggregator LP share a shard, so only the core
// hop crosses shards). Spine port LPs and pod aggregator LPs ride the
// shard of their pod's first rack.
func (c Config) LPShards(n, shards int) []int {
	lp := make([]int, c.NumLPs(n))
	if c.Topology.RackSize <= 0 {
		for m := 0; m < n; m++ {
			lp[m] = m * shards / n
		}
		return lp
	}
	racks := c.Topology.NumRacks(n)
	pods := c.Topology.Pods
	for m := 0; m < n; m++ {
		lp[m] = c.Topology.RackOf(m) * shards / racks
	}
	aggBase := n + 2*racks + 2*pods
	for r := 0; r < racks; r++ {
		s := r * shards / racks
		lp[n+2*r] = s
		lp[n+2*r+1] = s
		if c.Aggregation {
			lp[aggBase+r] = s
		}
	}
	for p := 0; p < pods; p++ {
		s := (p * (racks / pods)) * shards / racks
		lp[n+2*racks+2*p] = s
		lp[n+2*racks+2*p+1] = s
		if c.Aggregation {
			lp[aggBase+racks+p] = s
		}
	}
	return lp
}

// DefaultPreemptQuantum is the segment size used by the preemption ablation
// when preemptive transmission is enabled without an explicit quantum:
// 64 KiB is about a third of a default 50k-parameter slice, i.e. roughly
// 0.35 ms of serialization at the paper's 1.5 Gbps bottleneck bandwidth —
// the scheduling slack within which preemptive and non-preemptive timings
// of an already-sliced strategy are indistinguishable.
const DefaultPreemptQuantum = 64 << 10

// DefaultConfig returns the interconnect constants used for every experiment
// (DESIGN.md §5), with the bandwidth left for the caller to set.
func DefaultConfig(gbps float64) Config {
	return Config{
		BandwidthGbps:      gbps,
		PropDelay:          25 * sim.Microsecond,
		PerMsgOverhead:     8 * sim.Microsecond,
		HeaderBytes:        64,
		LocalBandwidthGbps: 160,
		LocalDelay:         5 * sim.Microsecond,
	}
}

// Aggregation tiers: the rack aggregators (one per rack, ToR-side) and —
// under a spine topology — the pod aggregators (one per pod, spine-side).
const (
	TierRack = 0
	TierPod  = 1
)

// Message is one transfer unit. Application-level meaning travels in the
// Kind/Chunk/Iter/Src fields, interpreted by the cluster layer; netsim only
// reads From, To, Bytes and Priority.
type Message struct {
	From, To int   // machine indices (To is a rack or pod index when ToAgg is set)
	Bytes    int64 // payload size (headers are added by the network)
	Priority int32 // lower is more urgent; interpreted by the egress discipline

	Kind  uint8 // application tag: push, notify, pull, data, ...
	Chunk int32 // application tag: chunk id
	Iter  int32 // application tag: iteration number
	Src   int32 // application tag: originating worker

	// ToAgg addresses the message to an aggregator: To names the rack
	// (AggTier TierRack) or the pod (AggTier TierPod), and delivery is
	// Config.AggDeliver on the aggregator LP instead of a machine NIC.
	// Requires Config.Aggregation (and a spine tier for TierPod).
	ToAgg bool
	// AggTier selects the aggregation tier of a ToAgg message: TierRack
	// (the zero value, so pre-spine senders are untouched) or TierPod.
	AggTier uint8
	// FromAgg marks a message originated by an aggregator (AggSend and
	// AggFanout set it): From is informational only — no egress was charged
	// for it, so no delivery-time credit refund is owed to any NIC.
	FromAgg bool
}

// msgDest is the flow key of a message for per-destination disciplines:
// the receiving machine, or — for aggregator-addressed messages — the rack
// (or pod, offset into its own range) encoded below the machine range so
// an aggregator flow never aliases a machine flow, and a pod-aggregator
// flow never aliases a rack-aggregator flow.
func msgDest(m Message) int32 {
	if m.ToAgg {
		if m.AggTier == TierPod {
			return int32(-1 - (1 << 24) - m.To)
		}
		return int32(-1 - m.To)
	}
	return int32(m.To)
}

// msgItem is the scheduler-visible view of a message at a core port queue;
// the destination key makes each (port, destination) pair one flow. (The
// port needs no field: a core queue belongs to one port LP, whose index is
// injected into source-aware disciplines via sched.ApplySource.)
func msgItem(m Message) sched.Item {
	return sched.Item{Priority: m.Priority, Bytes: m.Bytes, Dest: msgDest(m)}
}

// Handler receives fully delivered messages.
type Handler func(Message)

// txState is one resumable egress transmission: the message plus how much
// of its wire size (payload and header) has been serialized. With
// preemption disabled it is popped once and transmitted whole; with a
// quantum a preempted transmission is parked on its NIC carrying its
// progress and resumes from where it stopped.
type txState struct {
	msg Message
	// pri is the effective urgency class: it starts at msg.Priority and is
	// raised to the displacing class each time the transmission is parked
	// or passed over (priority inheritance). The inherited class is what
	// the resume rule compares against, so a parked tail yields only to
	// traffic strictly more urgent than what last displaced it — without
	// inheritance it would defer behind every future more-urgent arrival
	// (backward passes generate ever more urgent classes), and under a
	// comm-bound backlog that starves exactly the late-layer bulk tails
	// whose stalls already bind the iteration, inverting the "preemption
	// as upper bound" claim this models.
	pri  int32
	wire int64 // total wire bytes: payload + header
	sent int64 // wire bytes already serialized
}

// txItem is the scheduler-visible view of a transmission. It reads only
// fields that never change while the element is queued (pri is raised only
// while the element is parked outside the queue), so the view stays pure.
func txItem(t *txState) sched.Item {
	return sched.Item{Priority: t.pri, Bytes: t.msg.Bytes, Dest: msgDest(t.msg)}
}

// nicStats are one machine's transfer counters. They live on the nic —
// not globally — so that under the sharded engine each shard increments
// only counters it owns; Network's accessor methods sum them once the run
// is over.
type nicStats struct {
	msgsSent       int64
	bytesSent      int64
	msgsDelivered  int64
	bytesDelivered int64
	preemptions    int64
}

type nic struct {
	egress     *sched.Queue[*txState]
	egressBusy bool
	// parked holds preempted transmissions, most recently parked last. Each
	// entry was displaced by traffic strictly more urgent than its
	// (inherited) class, so the stack is always ordered by urgency with the
	// most urgent on top. Parked transmissions stay charged against any
	// credit window — their bytes are partially on the wire — and resume
	// before every queued element that is not strictly more urgent than
	// the class that displaced them: preemption costs a tail exactly the
	// displacing burst, never its position within its own class.
	parked     []*txState
	ingress    *pq.Queue[Message]
	ingressBsy bool
	stats      nicStats
	// rateScale multiplies the NIC's serialization rate (both directions);
	// 1 outside any scripted degradation window. It is read at segment (or
	// whole-message) start on the owning LP, so scheduled changes quantize
	// to the LP's own timeline.
	rateScale float64
}

// coreLink is one switch port — a rack's uplink/downlink at the core tier
// or a pod's uplink/downlink at the spine tier: a store-and-forward queue
// serializing at the tier's oversubscribed rate, owned by its own LP.
// Without a port discipline it is a blind FIFO slice (q/head); with one
// it is a per-flow sched.Queue (sq) running the named discipline — the
// priority-aware ToR/spine. bytes/msgs count the payload traffic that
// transited the port (LP-owned, so shard-safe; summed after the run).
type coreLink struct {
	lp    int
	up    bool    // uplink (towards the core/spine) or downlink (towards the rack/pod)
	spine bool    // spine-tier port (idx is a pod) or rack-tier port (idx is a rack)
	idx   int     // rack index (core tier) or pod index (spine tier)
	rate  float64 // Gbps, i.e. bits per nanosecond
	busy  bool
	q     []Message
	head  int
	sq    *sched.Queue[Message] // nil without a port discipline
	bytes int64
	msgs  int64
	// rateScale multiplies the port's serialization rate; 1 outside any
	// scripted degradation window (read at serialization start, on the
	// port's own LP).
	rateScale float64
}

// aggIngest is one aggregator's reduction engine under a finite
// AggReduceGBps: arriving payloads queue FIFO and are reduced at the
// configured rate on the aggregator's own LP before the application sees
// them. The credit refund of a gated sender happens at arrival, before
// the reduce queue — the transmission window covers the wire, not the
// ASIC — so capacity modelling composes with credit disciplines without
// changing the refund timing.
type aggIngest struct {
	busy bool
	q    []Message
	head int
}

// Network simulates the interconnect for n machines.
type Network struct {
	exec       sim.Exec
	procs      []sim.Proc // one per LP: machines, rack up/down links, spine up/down links, aggregators
	cfg        Config
	n          int // machines
	nics       []nic
	ups        []coreLink // per rack (empty without a rack topology)
	downs      []coreLink
	spineUps   []coreLink // per pod (empty without a spine tier)
	spineDowns []coreLink
	racks      int // rack count (0 without a rack topology)
	rpp        int // racks per pod (0 without a spine tier)
	aggBase    int // first aggregator LP (after rack and spine ports); -1 without aggregation
	deliver    Handler
	rec        *trace.Recorder // optional
	sharded    bool            // exec has >1 shard: no recorder (shared buckets)
	gated      bool            // the egress discipline admits against a credit window
	look       sim.Time        // cfg.Lookahead(): the credit-refund quantum

	// aggIn are the aggregator reduce engines (rack aggregators first,
	// then pod aggregators), present only with AggReduceGBps > 0: each is
	// a FIFO ingest queue serializing payloads at the reduce rate before
	// AggDeliver sees them.
	aggIn []aggIngest

	// aggDown flags aggregators taken offline by ScheduleAggOutage (rack
	// aggregators first, then pod aggregators, like aggIn). Allocated
	// lazily by the first scheduled outage, so fault-free runs carry no
	// state and stay bit-identical.
	aggDown []bool
}

// xfer carries one hop handoff from LP src to LP dst, delivering fn on
// dst's timeline at the absolute time at, through the engine's Cross path.
// Cross stamps the canonical tie key (virtual send time, source LP,
// per-source send order) on both engines, so a handoff colliding with
// another arrival — or with a local timer — at one (LP, instant) fires in
// the same order on any shard count. Every hop goes through here — even
// same-shard and same-machine pairs — precisely to keep that tie order
// engine-independent.
func (nw *Network) xfer(src, dst int, at sim.Time, fn func()) {
	nw.exec.Cross(src, dst, at, fn)
}

// New creates a network of n machines on the given engine. handler is invoked
// (on the virtual clock) when a message has fully arrived. rec may be nil.
// It panics on an unknown egress discipline name — validate names from user
// input with sched.ByName first.
func New(eng *sim.Engine, n int, cfg Config, handler Handler, rec *trace.Recorder) *Network {
	return NewOnExec(sim.Single{Eng: eng}, n, cfg, handler, rec)
}

// NewOnExec creates a network of n machines on an Exec: machine i is LP i,
// and a rack topology adds an uplink LP (n+2r) and downlink LP (n+2r+1)
// per rack r, then — with a spine tier — a spine uplink/downlink LP pair
// per pod, then the aggregator LPs, matching Config.LPShards. Credit-gated
// egress disciplines shard like any other under the window-relaxed refund
// protocol (see the package comment); trace recorders still need the
// single-shard engine, their buckets being shared across machines.
func NewOnExec(x sim.Exec, n int, cfg Config, handler Handler, rec *trace.Recorder) *Network {
	if cfg.BandwidthGbps <= 0 {
		panic(fmt.Sprintf("netsim: bandwidth %v Gbps", cfg.BandwidthGbps))
	}
	if err := cfg.Topology.ValidateFor(n); err != nil {
		panic(err.Error())
	}
	if cfg.Aggregation {
		if cfg.Topology.RackSize <= 0 {
			panic("netsim: Aggregation needs a rack topology (Topology.RackSize > 0)")
		}
		if cfg.AggDeliver == nil {
			panic("netsim: Aggregation without an AggDeliver handler")
		}
	}
	if cfg.AggReduceGBps < 0 {
		panic(fmt.Sprintf("netsim: negative aggregator reduce rate %g GB/s", cfg.AggReduceGBps))
	}
	if cfg.AggReduceGBps > 0 && !cfg.Aggregation {
		panic("netsim: AggReduceGBps without Aggregation (no aggregators to rate-limit)")
	}
	if cfg.LocalBandwidthGbps <= 0 {
		cfg.LocalBandwidthGbps = 160
	}
	nw := &Network{exec: x, cfg: cfg, n: n, aggBase: -1, deliver: handler, rec: rec, sharded: x.Shards() > 1}
	nw.look = cfg.Lookahead()
	if nw.sharded && rec != nil {
		panic("netsim: a trace.Recorder needs the single-shard engine (shared utilization buckets)")
	}
	// Ingress stays store-and-forward FIFO: reordering happens at the
	// sender, exactly as in the real system (the receiver drains the socket
	// in arrival order).
	fifoLess := func(a, b Message) bool { return false }
	nw.nics = make([]nic, n)
	for i := range nw.nics {
		disc := sched.ApplyProfile(sched.MustByName(cfg.Egress), cfg.Profile)
		// The owning machine's index seeds source-aware disciplines
		// (damped): every NIC resolves equal-rank ties toward a different
		// destination, de-synchronizing otherwise identical schedules.
		sched.ApplySource(disc, int32(i))
		q := sched.NewQueue(disc, txItem)
		// The refund events of the window-relaxed credit protocol exist
		// only for gated disciplines; ungated runs schedule none and stay
		// bit-identical to earlier releases.
		nw.gated = q.Gated()
		nw.nics[i] = nic{
			egress:    q,
			ingress:   pq.New(fifoLess),
			rateScale: 1,
		}
	}
	nw.procs = make([]sim.Proc, cfg.NumLPs(n))
	for lp := range nw.procs {
		nw.procs[lp] = x.Proc(lp)
	}
	if t := cfg.Topology; t.RackSize > 0 {
		racks := t.NumRacks(n)
		nw.racks = racks
		if cfg.Aggregation {
			nw.aggBase = n + 2*racks + 2*t.Pods
		}
		nw.ups = make([]coreLink, racks)
		nw.downs = make([]coreLink, racks)
		portQueue := func(name string, lp int) *sched.Queue[Message] {
			if name == "" {
				return nil
			}
			disc := sched.ApplyProfile(sched.MustByName(name), cfg.Profile)
			sched.ApplySource(disc, int32(lp))
			return sched.NewQueue(disc, msgItem)
		}
		for r := 0; r < racks; r++ {
			// Each port's rate is its rack's actual aggregate NIC rate — a
			// trailing partial rack's share of the core is proportional to
			// the machines it holds, not to the nominal RackSize.
			rate := float64(t.RackMachines(n, r)) * cfg.BandwidthGbps
			if t.CoreOversub > 0 {
				rate /= t.CoreOversub
			}
			nw.ups[r] = coreLink{lp: n + 2*r, up: true, idx: r, rate: rate, rateScale: 1, sq: portQueue(t.CoreSched, n+2*r)}
			nw.downs[r] = coreLink{lp: n + 2*r + 1, idx: r, rate: rate, rateScale: 1, sq: portQueue(t.CoreSched, n+2*r+1)}
		}
		if t.Pods > 0 {
			nw.rpp = racks / t.Pods
			nw.spineUps = make([]coreLink, t.Pods)
			nw.spineDowns = make([]coreLink, t.Pods)
			for p := 0; p < t.Pods; p++ {
				// The spine port rate divides the pod's aggregate ToR-uplink
				// rate (itself already CoreOversub-divided) by SpineOversub,
				// using actual machine counts so a trailing partial rack's
				// pod is not over-provisioned.
				podMachines := 0
				for r := p * nw.rpp; r < (p+1)*nw.rpp; r++ {
					podMachines += t.RackMachines(n, r)
				}
				rate := float64(podMachines) * cfg.BandwidthGbps
				if t.CoreOversub > 0 {
					rate /= t.CoreOversub
				}
				if t.SpineOversub > 0 {
					rate /= t.SpineOversub
				}
				upLP, downLP := n+2*racks+2*p, n+2*racks+2*p+1
				nw.spineUps[p] = coreLink{lp: upLP, up: true, spine: true, idx: p, rate: rate, rateScale: 1, sq: portQueue(t.SpineSched, upLP)}
				nw.spineDowns[p] = coreLink{lp: downLP, spine: true, idx: p, rate: rate, rateScale: 1, sq: portQueue(t.SpineSched, downLP)}
			}
		}
		if cfg.Aggregation && cfg.AggReduceGBps > 0 {
			nw.aggIn = make([]aggIngest, racks+t.Pods)
		}
	}
	return nw
}

// podOf maps a rack to its pod (spine tier only).
func (nw *Network) podOf(rack int) int { return rack / nw.rpp }

// aggLP is the LP index of the tier's aggregator idx (rack index at
// TierRack, pod index at TierPod).
func (nw *Network) aggLP(tier, idx int) int {
	if tier == TierPod {
		return nw.aggBase + nw.racks + idx
	}
	return nw.aggBase + idx
}

// Stats accessors: totals over the per-machine counters. Only meaningful
// from the simulation's own events or after Run returns (under the sharded
// engine the counters are written by concurrent shards mid-run).

// MsgsSent is the number of messages handed to Send.
func (nw *Network) MsgsSent() int64 {
	return nw.sumStats(func(s *nicStats) int64 { return s.msgsSent })
}

// BytesSent is the payload volume handed to Send.
func (nw *Network) BytesSent() int64 {
	return nw.sumStats(func(s *nicStats) int64 { return s.bytesSent })
}

// MsgsDelivered is the number of fully delivered messages.
func (nw *Network) MsgsDelivered() int64 {
	return nw.sumStats(func(s *nicStats) int64 { return s.msgsDelivered })
}

// BytesDelivered is the payload volume fully delivered.
func (nw *Network) BytesDelivered() int64 {
	return nw.sumStats(func(s *nicStats) int64 { return s.bytesDelivered })
}

// Preemptions counts in-flight transmissions parked for a more urgent
// message (always 0 with PreemptQuantum 0).
func (nw *Network) Preemptions() int64 {
	return nw.sumStats(func(s *nicStats) int64 { return s.preemptions })
}

// CoreBytes is the total payload volume that serialized through the rack
// uplink and downlink ports — the core traffic the oversubscription ratio
// throttles, and the number in-rack aggregation exists to shrink. 0 on a
// flat network.
func (nw *Network) CoreBytes() int64 {
	var t int64
	for i := range nw.ups {
		t += nw.ups[i].bytes + nw.downs[i].bytes
	}
	return t
}

// CoreMsgs is the message count behind CoreBytes (each inter-rack message
// counts once per port it transits, i.e. normally twice).
func (nw *Network) CoreMsgs() int64 {
	var t int64
	for i := range nw.ups {
		t += nw.ups[i].msgs + nw.downs[i].msgs
	}
	return t
}

// SpineBytes is the total payload volume that serialized through the spine
// uplink and downlink ports — the inter-pod traffic the spine
// oversubscription throttles, and the number hierarchical aggregation
// exists to shrink. 0 without a spine tier (CoreBytes counts only the
// rack-tier ports, so the two never double-count).
func (nw *Network) SpineBytes() int64 {
	var t int64
	for i := range nw.spineUps {
		t += nw.spineUps[i].bytes + nw.spineDowns[i].bytes
	}
	return t
}

// SpineMsgs is the message count behind SpineBytes (each inter-pod message
// counts once per spine port it transits, i.e. normally twice).
func (nw *Network) SpineMsgs() int64 {
	var t int64
	for i := range nw.spineUps {
		t += nw.spineUps[i].msgs + nw.spineDowns[i].msgs
	}
	return t
}

func (nw *Network) sumStats(f func(*nicStats) int64) int64 {
	var t int64
	for i := range nw.nics {
		t += f(&nw.nics[i].stats)
	}
	return t
}

// wireTime is the serialization time of a message in one direction.
func (nw *Network) wireTime(bytes int64) sim.Time {
	bits := float64(bytes+nw.cfg.HeaderBytes) * 8
	return nw.cfg.PerMsgOverhead + sim.Time(bits/nw.cfg.BandwidthGbps)
	// BandwidthGbps is Gbit/s = bit/ns, so bits/rate is already nanoseconds.
}

func (nw *Network) localTime(bytes int64) sim.Time {
	bits := float64(bytes+nw.cfg.HeaderBytes) * 8
	return nw.cfg.LocalDelay + sim.Time(bits/nw.cfg.LocalBandwidthGbps)
}

// Send queues m for transmission. Loopback messages (From == To) skip the
// NIC entirely, as a co-located worker and server communicate through shared
// memory in the real system. Aggregator-addressed messages (ToAgg, with To
// naming the rack) serialize through the sender's egress like any other
// traffic and are delivered to Config.AggDeliver.
func (nw *Network) Send(m Message) {
	if m.ToAgg && nw.aggBase < 0 {
		panic("netsim: ToAgg send without Config.Aggregation")
	}
	if m.ToAgg && m.AggTier == TierPod && nw.rpp == 0 {
		panic("netsim: TierPod send without a spine tier (Topology.Pods is 0)")
	}
	st := &nw.nics[m.From].stats
	st.msgsSent++
	st.bytesSent += m.Bytes
	if !m.ToAgg && m.From == m.To {
		nw.procs[m.From].After(nw.localTime(m.Bytes), func() {
			st.msgsDelivered++
			st.bytesDelivered += m.Bytes
			nw.deliver(m)
		})
		return
	}
	nw.nics[m.From].egress.Push(&txState{msg: m, pri: m.Priority, wire: m.Bytes + nw.cfg.HeaderBytes})
	nw.pumpEgress(m.From)
}

// destRack resolves the rack a message is ultimately headed for: the
// addressed rack for rack-aggregator traffic, the destination machine's
// rack otherwise. Pod-aggregator traffic has no destination rack — every
// routing site handles AggTier TierPod before consulting destRack.
func (nw *Network) destRack(m Message) int {
	if m.ToAgg {
		return m.To
	}
	return nw.cfg.Topology.RackOf(m.To)
}

// destPod resolves the pod a message is ultimately headed for (spine tier
// only): the addressed pod for pod-aggregator traffic, the destination
// rack's pod otherwise.
func (nw *Network) destPod(m Message) int {
	if m.ToAgg && m.AggTier == TierPod {
		return m.To
	}
	return nw.podOf(nw.destRack(m))
}

// forward hands a fully serialized message from machine `from` to the next
// hop: directly to the receiver's ingress (or its rack aggregator) after
// the propagation delay, or — for traffic leaving the rack, including
// everything addressed to a pod aggregator — into the source rack's
// uplink. Cross carries every hop, even when both LPs share a shard, so
// same-instant arrival order stays canonical for any shard count.
func (nw *Network) forward(from int, m Message) {
	now := nw.procs[from].Now()
	if t := nw.cfg.Topology; t.RackSize > 0 {
		toPodAgg := m.ToAgg && m.AggTier == TierPod
		if toPodAgg || t.RackOf(from) != nw.destRack(m) {
			l := &nw.ups[t.RackOf(from)]
			nw.xfer(from, l.lp, now+nw.cfg.PropDelay, func() { nw.coreEnqueue(l, m) })
			return
		}
	}
	if m.ToAgg {
		nw.xfer(from, nw.aggLP(TierRack, m.To), now+nw.cfg.PropDelay, func() { nw.deliverAgg(m) })
		return
	}
	nw.xfer(from, m.To, now+nw.cfg.PropDelay, func() { nw.arrive(m) })
}

// coreEnqueue queues m on a rack port — the blind FIFO slice or the
// discipline-ordered port queue — and pumps it.
func (nw *Network) coreEnqueue(l *coreLink, m Message) {
	if l.sq != nil {
		l.sq.Push(m)
	} else {
		l.q = append(l.q, m)
	}
	nw.pumpCore(l)
}

// pumpCore serializes the port's next message at the port's rate and
// forwards it via routeFromPort. Switch ports pay no per-message software
// overhead; header bytes still serialize. With a port discipline the next
// message is the discipline's choice (a gated discipline's window opens
// and closes entirely on this LP — serialization start to serialization
// end — so core gating is shard-safe); without one it is strict arrival
// order.
func (nw *Network) pumpCore(l *coreLink) {
	if l.busy {
		return
	}
	var m Message
	if l.sq != nil {
		var ok bool
		m, ok = l.sq.PopReady()
		if !ok {
			return // empty, or every flow credit-blocked: Done below repumps
		}
	} else {
		if l.head == len(l.q) {
			return
		}
		m = l.q[l.head]
		l.head++
		if l.head == len(l.q) {
			l.q = l.q[:0]
			l.head = 0
		}
	}
	l.busy = true
	l.bytes += m.Bytes
	l.msgs++
	p := nw.procs[l.lp]
	bits := float64(m.Bytes+nw.cfg.HeaderBytes) * 8
	rate := l.rate
	if l.rateScale != 1 {
		rate *= l.rateScale
	}
	p.After(sim.Time(bits/rate), func() {
		l.busy = false
		if l.sq != nil {
			l.sq.Done(m)
		}
		nw.routeFromPort(l, m)
		nw.pumpCore(l)
	})
}

// routeFromPort hands a message that finished serializing at a switch
// port to its next hop:
//
//   - a rack uplink diverts inter-pod traffic (and same-pod pod-aggregator
//     traffic) toward the spine; everything else turns around below it
//     into the destination rack's downlink — so on a topology without
//     inter-pod traffic the spine ports carry nothing and the schedule is
//     bit-identical to the single-tier core;
//   - a spine uplink crosses the spine to the destination pod's downlink;
//   - a spine downlink delivers pod-aggregator traffic to the pod
//     aggregator and descends everything else into the destination rack's
//     downlink;
//   - a rack downlink delivers to the rack aggregator or the destination
//     machine's ingress.
func (nw *Network) routeFromPort(l *coreLink, m Message) {
	now := nw.procs[l.lp].Now()
	t := nw.cfg.Topology
	prop := nw.cfg.PropDelay
	switch {
	case l.up && !l.spine:
		if nw.spineUps != nil {
			if pod := nw.podOf(l.idx); nw.destPod(m) != pod {
				s := &nw.spineUps[pod]
				nw.xfer(l.lp, s.lp, now+t.coreDelay(prop), func() { nw.coreEnqueue(s, m) })
				return
			}
		}
		if m.ToAgg && m.AggTier == TierPod {
			nw.xfer(l.lp, nw.aggLP(TierPod, m.To), now+t.coreDelay(prop), func() { nw.deliverAgg(m) })
			return
		}
		dst := &nw.downs[nw.destRack(m)]
		nw.xfer(l.lp, dst.lp, now+t.coreDelay(prop), func() { nw.coreEnqueue(dst, m) })
	case l.up:
		d := &nw.spineDowns[nw.destPod(m)]
		nw.xfer(l.lp, d.lp, now+t.spineDelay(prop), func() { nw.coreEnqueue(d, m) })
	case l.spine:
		if m.ToAgg && m.AggTier == TierPod {
			nw.xfer(l.lp, nw.aggLP(TierPod, m.To), now+prop, func() { nw.deliverAgg(m) })
			return
		}
		dst := &nw.downs[nw.destRack(m)]
		nw.xfer(l.lp, dst.lp, now+t.coreDelay(prop), func() { nw.coreEnqueue(dst, m) })
	case m.ToAgg:
		nw.xfer(l.lp, nw.aggLP(TierRack, m.To), now+prop, func() { nw.deliverAgg(m) })
	default:
		nw.xfer(l.lp, m.To, now+prop, func() { nw.arrive(m) })
	}
}

// refundCredit schedules the window-relaxed credit refund for a fully
// delivered message: the sender's transmission window for m closes one
// lookahead after delivery, on the sender's own LP (see the package
// comment — the delay is exactly the barrier-window width, so the refund
// is an ordinary cross-LP edge on any shard count and both engines order
// it canonically). Called only for gated egress disciplines; ungated runs
// schedule no refund events at all. src is the LP the delivery completed
// on. The throwaway txState is fine: Done reads only the Bytes and Dest
// of the Item view, which the message determines.
func (nw *Network) refundCredit(src int, m Message) {
	from := m.From
	nw.xfer(src, from, nw.procs[src].Now()+nw.look, func() {
		d := txState{msg: m, pri: m.Priority}
		nw.nics[from].egress.Done(&d)
		nw.pumpEgress(from)
	})
}

// deliverAgg hands an aggregator-addressed message to the application on
// the aggregator LP's timeline — through the FIFO reduce engine first
// when the aggregator's ingest capacity is finite (AggReduceGBps).
// Reaching the aggregator is full delivery for the sender's transmission
// window: the credit refund that pumpIngress performs for machine-
// addressed traffic happens here instead, at arrival (before any reduce
// queueing — the window covers the wire, not the ASIC).
func (nw *Network) deliverAgg(m Message) {
	if nw.gated && !m.FromAgg {
		// The refund happens even at a down aggregator: the sender's window
		// covers the wire, and the message did cross it.
		nw.refundCredit(nw.aggLP(int(m.AggTier), m.To), m)
	}
	ord := nw.aggOrd(int(m.AggTier), m.To)
	if nw.aggDown != nil && nw.aggDown[ord] {
		nw.dropAgg(m)
		return
	}
	if nw.aggIn == nil {
		nw.cfg.AggDeliver(int(m.AggTier), m.To, m)
		return
	}
	a := &nw.aggIn[ord]
	a.q = append(a.q, m)
	nw.pumpAggIngest(a)
}

// aggOrd is the tier's aggregator idx as an index into the flat
// rack-aggregators-then-pod-aggregators vectors (aggIn, aggDown).
func (nw *Network) aggOrd(tier, idx int) int {
	if tier == TierPod {
		return nw.racks + idx
	}
	return idx
}

// dropAgg discards a message addressed to a down aggregator, telling the
// application through Config.AggDrop (on the aggregator LP's timeline).
func (nw *Network) dropAgg(m Message) {
	if nw.cfg.AggDrop != nil {
		nw.cfg.AggDrop(int(m.AggTier), m.To, m)
	}
}

// pumpAggIngest serializes the aggregator's next queued payload through
// the reduce engine at AggReduceGBps bytes per second (== bytes per
// nanosecond) on the aggregator's own LP, then hands it to AggDeliver.
// Header bytes are wire framing, not reduction work, so only the payload
// is charged.
func (nw *Network) pumpAggIngest(a *aggIngest) {
	if a.busy || a.head == len(a.q) {
		return
	}
	m := a.q[a.head]
	a.head++
	if a.head == len(a.q) {
		a.q = a.q[:0]
		a.head = 0
	}
	a.busy = true
	nw.procs[nw.aggLP(int(m.AggTier), m.To)].After(sim.Time(float64(m.Bytes)/nw.cfg.AggReduceGBps), func() {
		a.busy = false
		// A crash that lands mid-reduction swallows the in-flight payload:
		// the outage begins the instant the event fires, not at the next
		// queue boundary.
		if nw.aggDown != nil && nw.aggDown[nw.aggOrd(int(m.AggTier), m.To)] {
			nw.dropAgg(m)
		} else {
			nw.cfg.AggDeliver(int(m.AggTier), m.To, m)
		}
		nw.pumpAggIngest(a)
	})
}

// AggSend transmits m from the tier's aggregator idx. m.To names a
// machine unless m.ToAgg is set, in which case it names another
// aggregator at m.AggTier (a rack aggregator escalating its reduced
// stream to its pod aggregator, or a pod aggregator descending a
// broadcast to a rack aggregator) — callers forwarding a received
// aggregator message to a machine must clear ToAgg explicitly. A rack
// aggregator delivers rack-locally after a propagation delay or hands
// everything else into its rack's uplink (the reduced stream's only
// serialization points are switch ports); a pod aggregator descends into
// the destination rack's downlink for its own pod or into its pod's spine
// uplink otherwise. It must be called from an AggDeliver callback (the
// aggregator's LP timeline); the message is marked FromAgg — no NIC
// egress is charged, modelling a switch-side reduction engine.
func (nw *Network) AggSend(tier, idx int, m Message) {
	m.FromAgg = true
	lp := nw.aggLP(tier, idx)
	now := nw.procs[lp].Now()
	prop := nw.cfg.PropDelay
	if tier == TierRack {
		if !m.ToAgg && nw.cfg.Topology.RackOf(m.To) == idx {
			nw.xfer(lp, m.To, now+prop, func() { nw.arrive(m) })
			return
		}
		// Inter-rack machine traffic and the escalation to the pod
		// aggregator both leave through the rack's uplink; routeFromPort
		// steers them from there.
		l := &nw.ups[idx]
		nw.xfer(lp, l.lp, now+prop, func() { nw.coreEnqueue(l, m) })
		return
	}
	// Pod aggregator: descend toward a rack of its own pod, or cross the
	// spine for anything outside it.
	dr := nw.destRack(m)
	if nw.podOf(dr) == idx {
		d := &nw.downs[dr]
		nw.xfer(lp, d.lp, now+prop, func() { nw.coreEnqueue(d, m) })
		return
	}
	s := &nw.spineUps[idx]
	nw.xfer(lp, s.lp, now+prop, func() { nw.coreEnqueue(s, m) })
}

// AggFanout replicates m from the tier's aggregator idx: a rack
// aggregator fans one copy to every machine of its rack except skip
// (pass -1 to reach all) — the ToR replicates a broadcast at line rate,
// so each copy pays only propagation plus its own receiver's ingress
// serialization; a pod aggregator fans one copy per rack of its pod
// except rack skip, each re-entering the destination rack's downlink as
// rack-aggregator traffic (ToAgg at TierRack), so a pod-level broadcast
// pays one downlink serialization per rack instead of one core crossing
// per machine. Must be called from an AggDeliver callback; copies are
// marked FromAgg like AggSend's.
func (nw *Network) AggFanout(tier, idx int, m Message, skip int) {
	m.FromAgg = true
	lp := nw.aggLP(tier, idx)
	now := nw.procs[lp].Now()
	if tier == TierPod {
		m.ToAgg = true
		m.AggTier = TierRack
		lo := idx * nw.rpp
		hi := lo + nw.rpp
		for r := lo; r < hi; r++ {
			if r == skip {
				continue
			}
			c := m
			c.To = r
			d := &nw.downs[r]
			nw.xfer(lp, d.lp, now+nw.cfg.PropDelay, func() { nw.coreEnqueue(d, c) })
		}
		return
	}
	m.ToAgg = false
	lo := idx * nw.cfg.Topology.RackSize
	hi := lo + nw.cfg.Topology.RackMachines(nw.n, idx)
	for w := lo; w < hi; w++ {
		if w == skip {
			continue
		}
		c := m
		c.To = w
		nw.xfer(lp, w, now+nw.cfg.PropDelay, func() { nw.arrive(c) })
	}
}

func (nw *Network) pumpEgress(machine int) {
	n := &nw.nics[machine]
	p := nw.procs[machine]
	if n.egressBusy {
		return
	}
	// A parked (preempted) transmission resumes before anything that is
	// not strictly more urgent than the class that displaced it. The
	// resume path never consults the credit gate, so a parked tail cannot
	// wedge: when the window refuses everything queued, the tail — whose
	// bytes are already charged in flight — is what makes progress.
	if k := len(n.parked); k > 0 {
		tail := n.parked[k-1]
		if !n.egress.Preempts(tail) {
			n.parked = n.parked[:k-1]
			// Re-charge the resumed remainder against its flow's window
			// (a Parker discipline stopped counting it while parked).
			n.egress.Resume(tail)
			n.egressBusy = true
			nw.pumpSegment(machine, tail)
			return
		}
		// Deferred again: re-inherit the displacing class, so the tail
		// resumes after this burst too instead of deferring to every later
		// (ever more urgent) arrival. Urgency is the discipline's order —
		// under tictac a numerically larger class can be strictly more
		// urgent, and a raw integer comparison here would skip the
		// inheritance and reopen the unbounded-deferral starvation.
		if h, ok := n.egress.Peek(); ok && n.egress.Discipline().Less(txItem(h), txItem(tail)) {
			tail.pri = h.pri
		}
	}
	// PopReady respects a credit-gated discipline's transmission window (a
	// refused head stays queued until a delivery returns credit — see
	// pumpIngress, which repumps this egress) and skips a credit-blocked
	// flow's head in favour of the most urgent admissible other flow.
	tx, ok := n.egress.PopReady()
	if !ok {
		return
	}
	n.egressBusy = true
	if nw.cfg.PreemptQuantum > 0 {
		nw.pumpSegment(machine, tx)
		return
	}
	m := tx.msg
	start := p.Now()
	dur := nw.wireTime(m.Bytes)
	if s := n.rateScale; s != 1 {
		bits := float64(m.Bytes+nw.cfg.HeaderBytes) * 8
		dur = nw.cfg.PerMsgOverhead + sim.Time(bits/(nw.cfg.BandwidthGbps*s))
	}
	p.After(dur, func() {
		nw.rec.AddRange(machine, trace.Out, start, start+dur, m.Bytes+nw.cfg.HeaderBytes)
		n.egressBusy = false
		// Hand off to the next hop after propagation.
		nw.forward(machine, m)
		nw.pumpEgress(machine)
	})
}

// pumpSegment serializes tx's next segment of at most PreemptQuantum wire
// bytes. Segment boundaries are computed from cumulative byte offsets
// (serial time of sent+seg minus serial time of sent), so the durations
// telescope: a transmission that is never preempted completes at exactly
// the tick the whole-message path would produce, bit-identical for any
// quantum, and preemption changes only the interleaving, never the total
// serialization cost (the per-message overhead is charged once, on the
// first segment).
//
// At each segment boundary the most urgent admissible queued message
// preempts when it wins the exchange outright: it must be strictly more
// urgent than the in-flight transmission AND shorter than the
// transmission's remaining wire bytes. The second condition is the
// shortest-remaining-first test that makes preemption a genuine upper
// bound: the urgent message saves up to the whole remainder while the
// parked tail loses only the preemptor's (smaller) service time.
// Preempting for an equal-or-larger message — e.g. one uniform parameter
// slice overtaking another — trades a delay for an equal delay and only
// churns the schedule, so slices that P3 has already cut to the preemption
// scale pass untouched: slicing itself is the approximation of preemption,
// which is the paper's claim.
func (nw *Network) pumpSegment(machine int, tx *txState) {
	n := &nw.nics[machine]
	p := nw.procs[machine]
	seg := tx.wire - tx.sent
	if seg > nw.cfg.PreemptQuantum {
		seg = nw.cfg.PreemptQuantum
	}
	rate := nw.cfg.BandwidthGbps
	if s := n.rateScale; s != 1 {
		// Sampled once per segment on the owning LP: a degradation window
		// opening mid-message slows only the segments that start inside it.
		rate *= s
	}
	serialAt := func(sent int64) sim.Time {
		return sim.Time(float64(sent) * 8 / rate)
	}
	dur := serialAt(tx.sent+seg) - serialAt(tx.sent)
	if tx.sent == 0 {
		dur = nw.cfg.PerMsgOverhead + dur
	}
	start := p.Now()
	p.After(dur, func() {
		nw.rec.AddRange(machine, trace.Out, start, start+dur, seg)
		tx.sent += seg
		if tx.sent == tx.wire {
			n.egressBusy = false
			m := tx.msg
			nw.forward(machine, m)
			nw.pumpEgress(machine)
			return
		}
		d := n.egress.Discipline()
		if pre, ok := n.egress.PopReadyIf(func(c *txState) bool {
			return d.Less(txItem(c), txItem(tx)) &&
				c.wire <= nw.cfg.PreemptQuantum && c.wire < tx.wire-tx.sent
		}); ok {
			// Inherit the displacing class unconditionally: pre is strictly
			// more urgent than tx by the discipline's order (the preemption
			// condition), which under tictac need not mean a numerically
			// smaller class.
			tx.pri = pre.pri
			n.parked = append(n.parked, tx)
			// A Parker discipline stops counting the parked remainder
			// against its flow's admission window until it resumes.
			n.egress.Park(tx)
			n.stats.preemptions++
			nw.pumpSegment(machine, pre)
			return
		}
		nw.pumpSegment(machine, tx)
	})
}

func (nw *Network) arrive(m Message) {
	n := &nw.nics[m.To]
	n.ingress.Push(m)
	nw.pumpIngress(m.To)
}

func (nw *Network) pumpIngress(machine int) {
	n := &nw.nics[machine]
	if n.ingressBsy || n.ingress.Len() == 0 {
		return
	}
	m := n.ingress.Pop()
	n.ingressBsy = true
	p := nw.procs[machine]
	start := p.Now()
	rx := nw.wireTime(m.Bytes)
	if s := n.rateScale; s != 1 {
		bits := float64(m.Bytes+nw.cfg.HeaderBytes) * 8
		rx = nw.cfg.PerMsgOverhead + sim.Time(bits/(nw.cfg.BandwidthGbps*s))
	}
	p.After(rx, func() {
		nw.rec.AddRange(machine, trace.In, start, start+rx, m.Bytes+nw.cfg.HeaderBytes)
		n.ingressBsy = false
		n.stats.msgsDelivered++
		n.stats.bytesDelivered += m.Bytes
		if nw.gated && !m.FromAgg {
			// Full delivery closes the sender's transmission window for
			// this message: the window-relaxed refund lands on the
			// sender's LP one lookahead from now (see refundCredit).
			// Ungated disciplines skip the refund entirely — for them
			// both Done and the pump are no-ops (an ungated egress never
			// idles with queued work), so scheduling nothing changes
			// nothing. Aggregator-originated messages (FromAgg) charged
			// no egress and own no credit: their senders' windows closed
			// at the aggregator (deliverAgg).
			nw.refundCredit(machine, m)
		}
		nw.deliver(m)
		nw.pumpIngress(machine)
	})
}

// QueuedEgress reports how many messages wait in machine m's egress queue
// (not counting one in flight). Used by tests.
func (nw *Network) QueuedEgress(m int) int { return nw.nics[m].egress.Len() }

// AggNow is the current virtual time on the tier's aggregator LP. Only
// meaningful from a callback already running on that LP (AggDeliver /
// AggDrop and the code they call) — reading another LP's clock mid-run
// would break shard determinism.
func (nw *Network) AggNow(tier, idx int) sim.Time {
	return nw.procs[nw.aggLP(tier, idx)].Now()
}

// Fault scheduling. Each Schedule* call installs ordinary discrete events
// on the affected state's own LP; they must run before the engine does
// (construction time), so the events sort before every runtime delivery
// at the same tick on that LP under both the single-shard and sharded
// engines — the LP-quantization rule that makes fault plans compose
// bit-identically with any shard count. A run with no Schedule* calls
// carries no fault state at all.

// ScheduleHostDegrade multiplies machine's NIC serialization rate (both
// directions) by factor during [at, until). Windows compose
// multiplicatively; a lone window restores the rate exactly (f/f == 1).
func (nw *Network) ScheduleHostDegrade(machine int, at, until sim.Time, factor float64) {
	if factor <= 0 {
		panic(fmt.Sprintf("netsim: host degrade factor %g", factor))
	}
	n := &nw.nics[machine]
	p := nw.procs[machine]
	p.At(at, func() { n.rateScale *= factor })
	p.At(until, func() { n.rateScale /= factor })
}

// ScheduleRackDegrade multiplies rack's ToR uplink and downlink
// serialization rates by factor during [at, until), with one event per
// boundary on each port's own LP.
func (nw *Network) ScheduleRackDegrade(rack int, at, until sim.Time, factor float64) {
	if factor <= 0 {
		panic(fmt.Sprintf("netsim: rack degrade factor %g", factor))
	}
	for _, l := range []*coreLink{&nw.ups[rack], &nw.downs[rack]} {
		l := l
		p := nw.procs[l.lp]
		p.At(at, func() { l.rateScale *= factor })
		p.At(until, func() { l.rateScale /= factor })
	}
}

// ScheduleSpineDegrade multiplies pod's spine uplink and downlink
// serialization rates by factor during [at, until).
func (nw *Network) ScheduleSpineDegrade(pod int, at, until sim.Time, factor float64) {
	if factor <= 0 {
		panic(fmt.Sprintf("netsim: spine degrade factor %g", factor))
	}
	for _, l := range []*coreLink{&nw.spineUps[pod], &nw.spineDowns[pod]} {
		l := l
		p := nw.procs[l.lp]
		p.At(at, func() { l.rateScale *= factor })
		p.At(until, func() { l.rateScale /= factor })
	}
}

// ScheduleAggOutage takes the tier's aggregator idx offline during
// [at, until) — or permanently when until <= at. While down, arriving
// aggregator-addressed messages go to Config.AggDrop instead of
// AggDeliver; payloads queued (or mid-reduction) in the reduce engine at
// the crash instant are dropped the same way. onCrash and onRestart run
// on the aggregator's LP at the window edges (either may be nil); the
// application uses them to discard its partial-reduction state.
func (nw *Network) ScheduleAggOutage(tier, idx int, at, until sim.Time, onCrash, onRestart func()) {
	if nw.aggBase < 0 {
		panic("netsim: ScheduleAggOutage without Config.Aggregation")
	}
	if tier == TierPod && nw.rpp == 0 {
		panic("netsim: TierPod outage without a spine tier (Topology.Pods is 0)")
	}
	if nw.aggDown == nil {
		nw.aggDown = make([]bool, nw.racks+nw.cfg.Topology.Pods)
	}
	ord := nw.aggOrd(tier, idx)
	p := nw.procs[nw.aggLP(tier, idx)]
	p.At(at, func() {
		nw.aggDown[ord] = true
		if nw.aggIn != nil {
			// Drain the reduce queue: everything waiting behind the ASIC is
			// lost with it. A payload mid-reduction drops at its own
			// completion event (pumpAggIngest checks aggDown).
			a := &nw.aggIn[ord]
			for _, m := range a.q[a.head:] {
				nw.dropAgg(m)
			}
			a.q = a.q[:0]
			a.head = 0
		}
		if onCrash != nil {
			onCrash()
		}
	})
	if until > at {
		p.At(until, func() {
			nw.aggDown[ord] = false
			if onRestart != nil {
				onRestart()
			}
		})
	}
}
