package netsim

import (
	"slices"
	"testing"

	"p3/internal/sim"
)

// rackCfg is cleanCfg (8 Gbps = 1 byte/ns, zero delays and overheads) over
// racks of two machines, so hop costs are exact round numbers: host NICs
// serialize 1000 bytes in 1000 ns, a rack's uplink/downlink port runs at
// the rack-aggregate 16 Gbps divided by the oversubscription ratio.
func rackCfg(oversub float64) Config {
	cfg := cleanCfg("fifo")
	cfg.Topology = Topology{RackSize: 2, CoreOversub: oversub}
	return cfg
}

// TestRackInterRackTiming pins the four-hop store-and-forward path of an
// inter-rack message: host egress, source-rack uplink, destination-rack
// downlink, host ingress — with the two core ports serializing at the
// oversubscribed rate.
func TestRackInterRackTiming(t *testing.T) {
	for _, tc := range []struct {
		oversub float64
		want    sim.Time
	}{
		// Non-blocking core: 1000 (egress) + 500 (uplink at 2 B/ns) +
		// 500 (downlink) + 1000 (ingress).
		{1, 3000},
		// 4:1 core: the two port hops slow to 0.5 B/ns, 2000 ns each.
		{4, 6000},
	} {
		got := runNet(t, rackCfg(tc.oversub), 4, func(nw *Network) {
			nw.Send(Message{From: 0, To: 2, Bytes: 1000})
		})
		if len(got) != 1 {
			t.Fatalf("oversub %g: %d deliveries", tc.oversub, len(got))
		}
		if got[0].at != tc.want {
			t.Errorf("oversub %g: inter-rack delivery at %v ns, want %v", tc.oversub, got[0].at, tc.want)
		}
	}
}

// TestRackIntraRackMatchesFlat pins that intra-rack traffic never touches
// the core: same-rack delivery times are identical to the flat network no
// matter how oversubscribed the core is.
func TestRackIntraRackMatchesFlat(t *testing.T) {
	flat := runNet(t, cleanCfg("fifo"), 4, func(nw *Network) {
		nw.Send(Message{From: 0, To: 1, Bytes: 1000})
	})
	racked := runNet(t, rackCfg(4), 4, func(nw *Network) {
		nw.Send(Message{From: 0, To: 1, Bytes: 1000})
	})
	if flat[0].at != racked[0].at {
		t.Errorf("intra-rack delivery at %v ns, flat network %v — the core leaked into a rack-local path", racked[0].at, flat[0].at)
	}
	if flat[0].at != 2000 {
		t.Errorf("flat delivery at %v ns, want 2000", flat[0].at)
	}
}

// TestRackCoreFIFOSerializes pins the contention the oversubscribed core
// creates and host-egress scheduling cannot see: two hosts in one rack
// send concurrently to the other rack, and both transit the shared uplink
// in FIFO order regardless of NIC-level parallelism. It also pins the
// canonical arrival order: the simultaneous uplink arrivals are served in
// source-LP order.
func TestRackCoreFIFOSerializes(t *testing.T) {
	got := runNet(t, rackCfg(4), 4, func(nw *Network) {
		nw.Send(Message{From: 0, To: 2, Bytes: 1000})
		nw.Send(Message{From: 1, To: 3, Bytes: 1000})
	})
	if len(got) != 2 {
		t.Fatalf("%d deliveries", len(got))
	}
	// Both egresses finish at 1000 and reach the uplink together; the
	// uplink serializes them back to back (2000 ns each at 0.5 B/ns), the
	// downlink likewise, and each host ingress adds 1000: machine 0's
	// message (lower source LP) lands at 6000, machine 1's at 8000.
	if got[0].m.From != 0 || got[0].at != 6000 {
		t.Errorf("first delivery from %d at %v, want from 0 at 6000", got[0].m.From, got[0].at)
	}
	if got[1].m.From != 1 || got[1].at != 8000 {
		t.Errorf("second delivery from %d at %v, want from 1 at 8000", got[1].m.From, got[1].at)
	}
}

// TestRackConservation pins that the rack path loses and duplicates
// nothing: every byte sent across an all-to-all burst is delivered, with
// the stats agreeing between sent and delivered.
func TestRackConservation(t *testing.T) {
	var eng sim.Engine
	delivered := 0
	cfg := rackCfg(4)
	nw := New(&eng, 6, cfg, func(m Message) { delivered++ }, nil)
	sent := 0
	for from := 0; from < 6; from++ {
		for to := 0; to < 6; to++ {
			if from != to {
				nw.Send(Message{From: from, To: to, Bytes: 1000 + int64(from)*10})
				sent++
			}
		}
	}
	eng.Run()
	if delivered != sent {
		t.Fatalf("delivered %d of %d messages", delivered, sent)
	}
	if nw.MsgsDelivered() != int64(sent) || nw.BytesDelivered() != nw.BytesSent() {
		t.Fatalf("stats disagree: %d/%d msgs, %d/%d bytes",
			nw.MsgsDelivered(), sent, nw.BytesDelivered(), nw.BytesSent())
	}
}

// TestRackLookaheadAndLPs pins the sharding contract of the topology: the
// lookahead is the minimum cross-LP latency (prop delay vs core delay),
// the LP count includes one uplink and one downlink per rack, and the
// shard assignment keeps a rack's machines and its two core ports on one
// shard so only the core hop crosses shards.
func TestRackLookaheadAndLPs(t *testing.T) {
	cfg := cleanCfg("fifo")
	cfg.PropDelay = 500

	if got := cfg.Lookahead(); got != 500 {
		t.Errorf("flat lookahead %v, want 500", got)
	}
	if got := cfg.NumLPs(5); got != 5 {
		t.Errorf("flat NumLPs(5) = %d, want 5", got)
	}

	cfg.Topology = Topology{RackSize: 2, CoreOversub: 4}
	if got := cfg.Lookahead(); got != 500 {
		t.Errorf("rack lookahead %v, want 500 (core delay defaults to prop delay)", got)
	}
	cfg.Topology.CoreDelay = 100
	if got := cfg.Lookahead(); got != 100 {
		t.Errorf("rack lookahead %v, want 100 (core hop is the tighter bound)", got)
	}
	// 5 machines in racks of 2 -> 3 racks (last partial), 2 port LPs each.
	if got := cfg.NumLPs(5); got != 11 {
		t.Errorf("rack NumLPs(5) = %d, want 11", got)
	}

	got := cfg.LPShards(4, 2)
	want := []int{0, 0, 1, 1 /* machines */, 0, 0 /* rack 0 ports */, 1, 1 /* rack 1 ports */}
	if !slices.Equal(got, want) {
		t.Errorf("LPShards(4, 2) = %v, want %v", got, want)
	}
}

// TestRackPartialRackRate pins the partial-rack bugfix: a trailing rack
// with fewer than RackSize machines gets core ports sized by its ACTUAL
// population, not RackSize. Three machines in racks of two leave machine 2
// alone in rack 1, whose ports run at 1x8/4 = 2 Gbps (0.25 B/ns) under the
// 4:1 core — not the 2x8/4 = 4 Gbps a full rack gets. Before the fix the
// lone machine's rack was granted a full rack's core share.
func TestRackPartialRackRate(t *testing.T) {
	got := runNet(t, rackCfg(4), 3, func(nw *Network) {
		nw.Send(Message{From: 0, To: 2, Bytes: 1000})
	})
	if len(got) != 1 {
		t.Fatalf("%d deliveries", len(got))
	}
	// egress 1000 + full rack 0 uplink 2000 + partial rack 1 downlink 4000
	// + ingress 1000.
	if got[0].at != 8000 {
		t.Errorf("partial-rack delivery at %v ns, want 8000 (lone machine's ports at 2 Gbps)", got[0].at)
	}
}

// TestRackUndersubscribedCore pins explicit undersubscription: CoreOversub
// in (0,1) multiplies the core share, and 0 means a non-blocking core
// identical to 1. Before the fix, values in (0,1] were silently ignored.
func TestRackUndersubscribedCore(t *testing.T) {
	under := runNet(t, rackCfg(0.5), 4, func(nw *Network) {
		nw.Send(Message{From: 0, To: 2, Bytes: 1000})
	})
	// egress 1000 + uplink 250 (2x8/0.5 = 32 Gbps = 4 B/ns) + downlink 250
	// + ingress 1000.
	if under[0].at != 2500 {
		t.Errorf("2:1-undersubscribed delivery at %v ns, want 2500", under[0].at)
	}
	zero := runNet(t, rackCfg(0), 4, func(nw *Network) {
		nw.Send(Message{From: 0, To: 2, Bytes: 1000})
	})
	one := runNet(t, rackCfg(1), 4, func(nw *Network) {
		nw.Send(Message{From: 0, To: 2, Bytes: 1000})
	})
	if zero[0].at != one[0].at {
		t.Errorf("CoreOversub 0 delivered at %v, CoreOversub 1 at %v — 0 should mean non-blocking", zero[0].at, one[0].at)
	}
}

// TestTopologyValidate pins the topology validation surface: negative
// sizes and ratios are rejected, CoreSched needs both a rack topology and
// a registered discipline, and the zero value (flat network) is valid.
func TestTopologyValidate(t *testing.T) {
	for _, tc := range []struct {
		name    string
		top     Topology
		wantErr bool
	}{
		{"zero value", Topology{}, false},
		{"racks only", Topology{RackSize: 4}, false},
		{"undersubscribed", Topology{RackSize: 4, CoreOversub: 0.5}, false},
		{"core sched", Topology{RackSize: 4, CoreSched: "p3"}, false},
		{"negative rack size", Topology{RackSize: -1}, true},
		{"negative oversub", Topology{RackSize: 4, CoreOversub: -2}, true},
		{"core sched without racks", Topology{CoreSched: "fifo"}, true},
		{"unknown core sched", Topology{RackSize: 4, CoreSched: "nosuch"}, true},
	} {
		err := tc.top.Validate()
		if (err != nil) != tc.wantErr {
			t.Errorf("%s: Validate() = %v, wantErr %v", tc.name, err, tc.wantErr)
		}
	}
}

// TestRackCoreSchedPriority pins that a discipline-scheduled core port
// reorders by rank where the blind FIFO port cannot. Machine 0 sends an
// urgent filler then a bulk message (priority 9); machine 1 sends an
// urgent message (priority 1) sized so it reaches the uplink AFTER the
// bulk message but while the port is still busy with the filler. The
// blind port serves arrival order (bulk first); the p3 port serves the
// urgent message first.
func TestRackCoreSchedPriority(t *testing.T) {
	send := func(nw *Network) {
		nw.Send(Message{From: 0, To: 2, Bytes: 1000, Priority: 0}) // filler: occupies the uplink 1000-3000
		nw.Send(Message{From: 0, To: 3, Bytes: 1000, Priority: 9}) // bulk: reaches the uplink at 2000
		nw.Send(Message{From: 1, To: 2, Bytes: 2500, Priority: 1}) // urgent: reaches the uplink at 2500
	}
	order := func(cfg Config) []int32 {
		var prios []int32
		for _, d := range runNet(t, cfg, 4, send) {
			prios = append(prios, d.m.Priority)
		}
		return prios
	}
	blind := order(rackCfg(4))
	if !slices.Equal(blind, []int32{0, 9, 1}) {
		t.Errorf("blind core served priorities %v, want arrival order [0 9 1]", blind)
	}
	p3cfg := rackCfg(4)
	p3cfg.Topology.CoreSched = "p3"
	ranked := order(p3cfg)
	if !slices.Equal(ranked, []int32{0, 1, 9}) {
		t.Errorf("p3 core served priorities %v, want rank order [0 1 9]", ranked)
	}
}

// TestAggTopologyLPs pins the LP layout with aggregation on: one extra LP
// per rack appended after the port LPs (so non-aggregated LP numbering is
// unchanged), each assigned to its rack's shard.
func TestAggTopologyLPs(t *testing.T) {
	cfg := cleanCfg("fifo")
	cfg.Topology = Topology{RackSize: 2, CoreOversub: 4}
	cfg.Aggregation = true
	// 5 machines -> 3 racks: 5 + 2*3 ports + 3 aggregators.
	if got := cfg.NumLPs(5); got != 14 {
		t.Errorf("agg NumLPs(5) = %d, want 14", got)
	}
	got := cfg.LPShards(4, 2)
	want := []int{0, 0, 1, 1 /* machines */, 0, 0, 1, 1 /* ports */, 0, 1 /* aggregators */}
	if !slices.Equal(got, want) {
		t.Errorf("agg LPShards(4, 2) = %v, want %v", got, want)
	}
}

// TestAggDeliverAndSend pins the aggregator data path at the netsim layer:
// ToAgg sends land in AggDeliver on the aggregator's timeline without core
// transit for rack-local pushes, AggSend forwards one reduced stream whose
// only serialization points are the two core ports, and AggFanout copies
// pay only propagation plus each receiver's own ingress.
func TestAggDeliverAndSend(t *testing.T) {
	var eng sim.Engine
	type aggDelivery struct {
		rack int
		m    Message
		at   sim.Time
	}
	var aggGot []aggDelivery
	var got []delivery
	cfg := rackCfg(4)
	cfg.Aggregation = true
	var nw *Network
	cfg.AggDeliver = func(rack int, m Message) {
		aggGot = append(aggGot, aggDelivery{rack, m, eng.Now()})
		if len(aggGot) == 2 {
			// Both of rack 0's pushes are in: forward one reduced stream
			// across the core and fan a notify back out within the rack.
			nw.AggSend(rack, Message{From: 0, To: 2, Bytes: 1000})
			nw.AggFanout(rack, Message{From: 0, Bytes: 500}, -1)
		}
	}
	nw = New(&eng, 4, cfg, func(m Message) {
		got = append(got, delivery{m, eng.Now()})
	}, nil)
	// Machines 0 and 1 push to their own rack's aggregator (rack 0).
	nw.Send(Message{From: 0, To: 0, ToAgg: true, Bytes: 1000})
	nw.Send(Message{From: 1, To: 0, ToAgg: true, Bytes: 1000})
	eng.Run()
	if len(aggGot) != 2 {
		t.Fatalf("%d aggregator deliveries, want 2", len(aggGot))
	}
	// Rack-local pushes pay only host egress (1000 ns): no core transit.
	for i, d := range aggGot {
		if d.rack != 0 || d.at != 1000 {
			t.Errorf("agg delivery %d: rack %d at %v, want rack 0 at 1000", i, d.rack, d.at)
		}
	}
	if len(got) != 3 {
		t.Fatalf("%d machine deliveries, want 3 (2 fanout copies + 1 reduced stream)", len(got))
	}
	// Fanout copies: no egress, no core — propagation (0) + 500 ns ingress.
	for _, d := range got[:2] {
		if d.at != 1500 || !d.m.FromAgg {
			t.Errorf("fanout copy to %d at %v (FromAgg=%v), want 1500 ns, FromAgg", d.m.To, d.at, d.m.FromAgg)
		}
	}
	// Reduced stream: uplink 1000-3000, downlink 3000-5000, ingress -> 6000.
	if last := got[2]; last.m.To != 2 || last.at != 6000 || !last.m.FromAgg {
		t.Errorf("reduced stream to %d at %v (FromAgg=%v), want machine 2 at 6000 ns, FromAgg", last.m.To, last.at, last.m.FromAgg)
	}
}
