package netsim

import (
	"slices"
	"testing"

	"p3/internal/sim"
)

// rackCfg is cleanCfg (8 Gbps = 1 byte/ns, zero delays and overheads) over
// racks of two machines, so hop costs are exact round numbers: host NICs
// serialize 1000 bytes in 1000 ns, a rack's uplink/downlink port runs at
// the rack-aggregate 16 Gbps divided by the oversubscription ratio.
func rackCfg(oversub float64) Config {
	cfg := cleanCfg("fifo")
	cfg.Topology = Topology{RackSize: 2, CoreOversub: oversub}
	return cfg
}

// TestRackInterRackTiming pins the four-hop store-and-forward path of an
// inter-rack message: host egress, source-rack uplink, destination-rack
// downlink, host ingress — with the two core ports serializing at the
// oversubscribed rate.
func TestRackInterRackTiming(t *testing.T) {
	for _, tc := range []struct {
		oversub float64
		want    sim.Time
	}{
		// Non-blocking core: 1000 (egress) + 500 (uplink at 2 B/ns) +
		// 500 (downlink) + 1000 (ingress).
		{1, 3000},
		// 4:1 core: the two port hops slow to 0.5 B/ns, 2000 ns each.
		{4, 6000},
	} {
		got := runNet(t, rackCfg(tc.oversub), 4, func(nw *Network) {
			nw.Send(Message{From: 0, To: 2, Bytes: 1000})
		})
		if len(got) != 1 {
			t.Fatalf("oversub %g: %d deliveries", tc.oversub, len(got))
		}
		if got[0].at != tc.want {
			t.Errorf("oversub %g: inter-rack delivery at %v ns, want %v", tc.oversub, got[0].at, tc.want)
		}
	}
}

// TestRackIntraRackMatchesFlat pins that intra-rack traffic never touches
// the core: same-rack delivery times are identical to the flat network no
// matter how oversubscribed the core is.
func TestRackIntraRackMatchesFlat(t *testing.T) {
	flat := runNet(t, cleanCfg("fifo"), 4, func(nw *Network) {
		nw.Send(Message{From: 0, To: 1, Bytes: 1000})
	})
	racked := runNet(t, rackCfg(4), 4, func(nw *Network) {
		nw.Send(Message{From: 0, To: 1, Bytes: 1000})
	})
	if flat[0].at != racked[0].at {
		t.Errorf("intra-rack delivery at %v ns, flat network %v — the core leaked into a rack-local path", racked[0].at, flat[0].at)
	}
	if flat[0].at != 2000 {
		t.Errorf("flat delivery at %v ns, want 2000", flat[0].at)
	}
}

// TestRackCoreFIFOSerializes pins the contention the oversubscribed core
// creates and host-egress scheduling cannot see: two hosts in one rack
// send concurrently to the other rack, and both transit the shared uplink
// in FIFO order regardless of NIC-level parallelism. It also pins the
// canonical arrival order: the simultaneous uplink arrivals are served in
// source-LP order.
func TestRackCoreFIFOSerializes(t *testing.T) {
	got := runNet(t, rackCfg(4), 4, func(nw *Network) {
		nw.Send(Message{From: 0, To: 2, Bytes: 1000})
		nw.Send(Message{From: 1, To: 3, Bytes: 1000})
	})
	if len(got) != 2 {
		t.Fatalf("%d deliveries", len(got))
	}
	// Both egresses finish at 1000 and reach the uplink together; the
	// uplink serializes them back to back (2000 ns each at 0.5 B/ns), the
	// downlink likewise, and each host ingress adds 1000: machine 0's
	// message (lower source LP) lands at 6000, machine 1's at 8000.
	if got[0].m.From != 0 || got[0].at != 6000 {
		t.Errorf("first delivery from %d at %v, want from 0 at 6000", got[0].m.From, got[0].at)
	}
	if got[1].m.From != 1 || got[1].at != 8000 {
		t.Errorf("second delivery from %d at %v, want from 1 at 8000", got[1].m.From, got[1].at)
	}
}

// TestRackConservation pins that the rack path loses and duplicates
// nothing: every byte sent across an all-to-all burst is delivered, with
// the stats agreeing between sent and delivered.
func TestRackConservation(t *testing.T) {
	var eng sim.Engine
	delivered := 0
	cfg := rackCfg(4)
	nw := New(&eng, 6, cfg, func(m Message) { delivered++ }, nil)
	sent := 0
	for from := 0; from < 6; from++ {
		for to := 0; to < 6; to++ {
			if from != to {
				nw.Send(Message{From: from, To: to, Bytes: 1000 + int64(from)*10})
				sent++
			}
		}
	}
	eng.Run()
	if delivered != sent {
		t.Fatalf("delivered %d of %d messages", delivered, sent)
	}
	if nw.MsgsDelivered() != int64(sent) || nw.BytesDelivered() != nw.BytesSent() {
		t.Fatalf("stats disagree: %d/%d msgs, %d/%d bytes",
			nw.MsgsDelivered(), sent, nw.BytesDelivered(), nw.BytesSent())
	}
}

// TestRackLookaheadAndLPs pins the sharding contract of the topology: the
// lookahead is the minimum cross-LP latency (prop delay vs core delay),
// the LP count includes one uplink and one downlink per rack, and the
// shard assignment keeps a rack's machines and its two core ports on one
// shard so only the core hop crosses shards.
func TestRackLookaheadAndLPs(t *testing.T) {
	cfg := cleanCfg("fifo")
	cfg.PropDelay = 500

	if got := cfg.Lookahead(); got != 500 {
		t.Errorf("flat lookahead %v, want 500", got)
	}
	if got := cfg.NumLPs(5); got != 5 {
		t.Errorf("flat NumLPs(5) = %d, want 5", got)
	}

	cfg.Topology = Topology{RackSize: 2, CoreOversub: 4}
	if got := cfg.Lookahead(); got != 500 {
		t.Errorf("rack lookahead %v, want 500 (core delay defaults to prop delay)", got)
	}
	cfg.Topology.CoreDelay = 100
	if got := cfg.Lookahead(); got != 100 {
		t.Errorf("rack lookahead %v, want 100 (core hop is the tighter bound)", got)
	}
	// 5 machines in racks of 2 -> 3 racks (last partial), 2 port LPs each.
	if got := cfg.NumLPs(5); got != 11 {
		t.Errorf("rack NumLPs(5) = %d, want 11", got)
	}

	got := cfg.LPShards(4, 2)
	want := []int{0, 0, 1, 1 /* machines */, 0, 0 /* rack 0 ports */, 1, 1 /* rack 1 ports */}
	if !slices.Equal(got, want) {
		t.Errorf("LPShards(4, 2) = %v, want %v", got, want)
	}
}
