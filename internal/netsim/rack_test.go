package netsim

import (
	"slices"
	"testing"

	"p3/internal/sim"
)

// rackCfg is cleanCfg (8 Gbps = 1 byte/ns, zero delays and overheads) over
// racks of two machines, so hop costs are exact round numbers: host NICs
// serialize 1000 bytes in 1000 ns, a rack's uplink/downlink port runs at
// the rack-aggregate 16 Gbps divided by the oversubscription ratio.
func rackCfg(oversub float64) Config {
	cfg := cleanCfg("fifo")
	cfg.Topology = Topology{RackSize: 2, CoreOversub: oversub}
	return cfg
}

// TestRackInterRackTiming pins the four-hop store-and-forward path of an
// inter-rack message: host egress, source-rack uplink, destination-rack
// downlink, host ingress — with the two core ports serializing at the
// oversubscribed rate.
func TestRackInterRackTiming(t *testing.T) {
	for _, tc := range []struct {
		oversub float64
		want    sim.Time
	}{
		// Non-blocking core: 1000 (egress) + 500 (uplink at 2 B/ns) +
		// 500 (downlink) + 1000 (ingress).
		{1, 3000},
		// 4:1 core: the two port hops slow to 0.5 B/ns, 2000 ns each.
		{4, 6000},
	} {
		got := runNet(t, rackCfg(tc.oversub), 4, func(nw *Network) {
			nw.Send(Message{From: 0, To: 2, Bytes: 1000})
		})
		if len(got) != 1 {
			t.Fatalf("oversub %g: %d deliveries", tc.oversub, len(got))
		}
		if got[0].at != tc.want {
			t.Errorf("oversub %g: inter-rack delivery at %v ns, want %v", tc.oversub, got[0].at, tc.want)
		}
	}
}

// TestRackIntraRackMatchesFlat pins that intra-rack traffic never touches
// the core: same-rack delivery times are identical to the flat network no
// matter how oversubscribed the core is.
func TestRackIntraRackMatchesFlat(t *testing.T) {
	flat := runNet(t, cleanCfg("fifo"), 4, func(nw *Network) {
		nw.Send(Message{From: 0, To: 1, Bytes: 1000})
	})
	racked := runNet(t, rackCfg(4), 4, func(nw *Network) {
		nw.Send(Message{From: 0, To: 1, Bytes: 1000})
	})
	if flat[0].at != racked[0].at {
		t.Errorf("intra-rack delivery at %v ns, flat network %v — the core leaked into a rack-local path", racked[0].at, flat[0].at)
	}
	if flat[0].at != 2000 {
		t.Errorf("flat delivery at %v ns, want 2000", flat[0].at)
	}
}

// TestRackCoreFIFOSerializes pins the contention the oversubscribed core
// creates and host-egress scheduling cannot see: two hosts in one rack
// send concurrently to the other rack, and both transit the shared uplink
// in FIFO order regardless of NIC-level parallelism. It also pins the
// canonical arrival order: the simultaneous uplink arrivals are served in
// source-LP order.
func TestRackCoreFIFOSerializes(t *testing.T) {
	got := runNet(t, rackCfg(4), 4, func(nw *Network) {
		nw.Send(Message{From: 0, To: 2, Bytes: 1000})
		nw.Send(Message{From: 1, To: 3, Bytes: 1000})
	})
	if len(got) != 2 {
		t.Fatalf("%d deliveries", len(got))
	}
	// Both egresses finish at 1000 and reach the uplink together; the
	// uplink serializes them back to back (2000 ns each at 0.5 B/ns), the
	// downlink likewise, and each host ingress adds 1000: machine 0's
	// message (lower source LP) lands at 6000, machine 1's at 8000.
	if got[0].m.From != 0 || got[0].at != 6000 {
		t.Errorf("first delivery from %d at %v, want from 0 at 6000", got[0].m.From, got[0].at)
	}
	if got[1].m.From != 1 || got[1].at != 8000 {
		t.Errorf("second delivery from %d at %v, want from 1 at 8000", got[1].m.From, got[1].at)
	}
}

// TestRackConservation pins that the rack path loses and duplicates
// nothing: every byte sent across an all-to-all burst is delivered, with
// the stats agreeing between sent and delivered.
func TestRackConservation(t *testing.T) {
	var eng sim.Engine
	delivered := 0
	cfg := rackCfg(4)
	nw := New(&eng, 6, cfg, func(m Message) { delivered++ }, nil)
	sent := 0
	for from := 0; from < 6; from++ {
		for to := 0; to < 6; to++ {
			if from != to {
				nw.Send(Message{From: from, To: to, Bytes: 1000 + int64(from)*10})
				sent++
			}
		}
	}
	eng.Run()
	if delivered != sent {
		t.Fatalf("delivered %d of %d messages", delivered, sent)
	}
	if nw.MsgsDelivered() != int64(sent) || nw.BytesDelivered() != nw.BytesSent() {
		t.Fatalf("stats disagree: %d/%d msgs, %d/%d bytes",
			nw.MsgsDelivered(), sent, nw.BytesDelivered(), nw.BytesSent())
	}
}

// TestRackLookaheadAndLPs pins the sharding contract of the topology: the
// lookahead is the minimum cross-LP latency (prop delay vs core delay),
// the LP count includes one uplink and one downlink per rack, and the
// shard assignment keeps a rack's machines and its two core ports on one
// shard so only the core hop crosses shards.
func TestRackLookaheadAndLPs(t *testing.T) {
	cfg := cleanCfg("fifo")
	cfg.PropDelay = 500

	if got := cfg.Lookahead(); got != 500 {
		t.Errorf("flat lookahead %v, want 500", got)
	}
	if got := cfg.NumLPs(5); got != 5 {
		t.Errorf("flat NumLPs(5) = %d, want 5", got)
	}

	cfg.Topology = Topology{RackSize: 2, CoreOversub: 4}
	if got := cfg.Lookahead(); got != 500 {
		t.Errorf("rack lookahead %v, want 500 (core delay defaults to prop delay)", got)
	}
	cfg.Topology.CoreDelay = 100
	if got := cfg.Lookahead(); got != 100 {
		t.Errorf("rack lookahead %v, want 100 (core hop is the tighter bound)", got)
	}
	// 5 machines in racks of 2 -> 3 racks (last partial), 2 port LPs each.
	if got := cfg.NumLPs(5); got != 11 {
		t.Errorf("rack NumLPs(5) = %d, want 11", got)
	}

	got := cfg.LPShards(4, 2)
	want := []int{0, 0, 1, 1 /* machines */, 0, 0 /* rack 0 ports */, 1, 1 /* rack 1 ports */}
	if !slices.Equal(got, want) {
		t.Errorf("LPShards(4, 2) = %v, want %v", got, want)
	}
}

// TestRackPartialRackRate pins the partial-rack bugfix: a trailing rack
// with fewer than RackSize machines gets core ports sized by its ACTUAL
// population, not RackSize. Three machines in racks of two leave machine 2
// alone in rack 1, whose ports run at 1x8/4 = 2 Gbps (0.25 B/ns) under the
// 4:1 core — not the 2x8/4 = 4 Gbps a full rack gets. Before the fix the
// lone machine's rack was granted a full rack's core share.
func TestRackPartialRackRate(t *testing.T) {
	got := runNet(t, rackCfg(4), 3, func(nw *Network) {
		nw.Send(Message{From: 0, To: 2, Bytes: 1000})
	})
	if len(got) != 1 {
		t.Fatalf("%d deliveries", len(got))
	}
	// egress 1000 + full rack 0 uplink 2000 + partial rack 1 downlink 4000
	// + ingress 1000.
	if got[0].at != 8000 {
		t.Errorf("partial-rack delivery at %v ns, want 8000 (lone machine's ports at 2 Gbps)", got[0].at)
	}
}

// TestRackUndersubscribedCore pins explicit undersubscription: CoreOversub
// in (0,1) multiplies the core share, and 0 means a non-blocking core
// identical to 1. Before the fix, values in (0,1] were silently ignored.
func TestRackUndersubscribedCore(t *testing.T) {
	under := runNet(t, rackCfg(0.5), 4, func(nw *Network) {
		nw.Send(Message{From: 0, To: 2, Bytes: 1000})
	})
	// egress 1000 + uplink 250 (2x8/0.5 = 32 Gbps = 4 B/ns) + downlink 250
	// + ingress 1000.
	if under[0].at != 2500 {
		t.Errorf("2:1-undersubscribed delivery at %v ns, want 2500", under[0].at)
	}
	zero := runNet(t, rackCfg(0), 4, func(nw *Network) {
		nw.Send(Message{From: 0, To: 2, Bytes: 1000})
	})
	one := runNet(t, rackCfg(1), 4, func(nw *Network) {
		nw.Send(Message{From: 0, To: 2, Bytes: 1000})
	})
	if zero[0].at != one[0].at {
		t.Errorf("CoreOversub 0 delivered at %v, CoreOversub 1 at %v — 0 should mean non-blocking", zero[0].at, one[0].at)
	}
}

// TestTopologyValidate pins the topology validation surface: negative
// sizes and ratios are rejected, CoreSched needs both a rack topology and
// a registered discipline, and the zero value (flat network) is valid.
func TestTopologyValidate(t *testing.T) {
	for _, tc := range []struct {
		name    string
		top     Topology
		wantErr bool
	}{
		{"zero value", Topology{}, false},
		{"racks only", Topology{RackSize: 4}, false},
		{"undersubscribed", Topology{RackSize: 4, CoreOversub: 0.5}, false},
		{"core sched", Topology{RackSize: 4, CoreSched: "p3"}, false},
		{"negative rack size", Topology{RackSize: -1}, true},
		{"negative oversub", Topology{RackSize: 4, CoreOversub: -2}, true},
		{"core sched without racks", Topology{CoreSched: "fifo"}, true},
		{"unknown core sched", Topology{RackSize: 4, CoreSched: "nosuch"}, true},
		{"pods", Topology{RackSize: 4, Pods: 2}, false},
		{"full spine", Topology{RackSize: 4, Pods: 2, SpineOversub: 4, SpineDelay: 100, SpineSched: "p3"}, false},
		{"undersubscribed spine", Topology{RackSize: 4, Pods: 2, SpineOversub: 0.5}, false},
		{"negative pods", Topology{RackSize: 4, Pods: -1}, true},
		{"pods without racks", Topology{Pods: 2}, true},
		{"negative spine oversub", Topology{RackSize: 4, Pods: 2, SpineOversub: -2}, true},
		{"spine oversub without pods", Topology{RackSize: 4, SpineOversub: 4}, true},
		{"spine delay without pods", Topology{RackSize: 4, SpineDelay: 100}, true},
		{"spine sched without pods", Topology{RackSize: 4, SpineSched: "p3"}, true},
		{"unknown spine sched", Topology{RackSize: 4, Pods: 2, SpineSched: "nosuch"}, true},
	} {
		err := tc.top.Validate()
		if (err != nil) != tc.wantErr {
			t.Errorf("%s: Validate() = %v, wantErr %v", tc.name, err, tc.wantErr)
		}
	}
	// ValidateFor adds the machine-count-dependent constraint: the pods
	// must divide the racks evenly.
	even := Topology{RackSize: 4, Pods: 2}
	if err := even.ValidateFor(16); err != nil {
		t.Errorf("ValidateFor(16) with 4 racks in 2 pods: %v", err)
	}
	if err := even.ValidateFor(12); err == nil {
		t.Error("ValidateFor(12) accepted 3 racks in 2 pods")
	}
}

// TestRackCoreSchedPriority pins that a discipline-scheduled core port
// reorders by rank where the blind FIFO port cannot. Machine 0 sends an
// urgent filler then a bulk message (priority 9); machine 1 sends an
// urgent message (priority 1) sized so it reaches the uplink AFTER the
// bulk message but while the port is still busy with the filler. The
// blind port serves arrival order (bulk first); the p3 port serves the
// urgent message first.
func TestRackCoreSchedPriority(t *testing.T) {
	send := func(nw *Network) {
		nw.Send(Message{From: 0, To: 2, Bytes: 1000, Priority: 0}) // filler: occupies the uplink 1000-3000
		nw.Send(Message{From: 0, To: 3, Bytes: 1000, Priority: 9}) // bulk: reaches the uplink at 2000
		nw.Send(Message{From: 1, To: 2, Bytes: 2500, Priority: 1}) // urgent: reaches the uplink at 2500
	}
	order := func(cfg Config) []int32 {
		var prios []int32
		for _, d := range runNet(t, cfg, 4, send) {
			prios = append(prios, d.m.Priority)
		}
		return prios
	}
	blind := order(rackCfg(4))
	if !slices.Equal(blind, []int32{0, 9, 1}) {
		t.Errorf("blind core served priorities %v, want arrival order [0 9 1]", blind)
	}
	p3cfg := rackCfg(4)
	p3cfg.Topology.CoreSched = "p3"
	ranked := order(p3cfg)
	if !slices.Equal(ranked, []int32{0, 1, 9}) {
		t.Errorf("p3 core served priorities %v, want rank order [0 1 9]", ranked)
	}
}

// TestAggTopologyLPs pins the LP layout with aggregation on: one extra LP
// per rack appended after the port LPs (so non-aggregated LP numbering is
// unchanged), each assigned to its rack's shard.
func TestAggTopologyLPs(t *testing.T) {
	cfg := cleanCfg("fifo")
	cfg.Topology = Topology{RackSize: 2, CoreOversub: 4}
	cfg.Aggregation = true
	// 5 machines -> 3 racks: 5 + 2*3 ports + 3 aggregators.
	if got := cfg.NumLPs(5); got != 14 {
		t.Errorf("agg NumLPs(5) = %d, want 14", got)
	}
	got := cfg.LPShards(4, 2)
	want := []int{0, 0, 1, 1 /* machines */, 0, 0, 1, 1 /* ports */, 0, 1 /* aggregators */}
	if !slices.Equal(got, want) {
		t.Errorf("agg LPShards(4, 2) = %v, want %v", got, want)
	}
}

// TestAggDeliverAndSend pins the aggregator data path at the netsim layer:
// ToAgg sends land in AggDeliver on the aggregator's timeline without core
// transit for rack-local pushes, AggSend forwards one reduced stream whose
// only serialization points are the two core ports, and AggFanout copies
// pay only propagation plus each receiver's own ingress.
func TestAggDeliverAndSend(t *testing.T) {
	var eng sim.Engine
	type aggDelivery struct {
		rack int
		m    Message
		at   sim.Time
	}
	var aggGot []aggDelivery
	var got []delivery
	cfg := rackCfg(4)
	cfg.Aggregation = true
	var nw *Network
	cfg.AggDeliver = func(tier, rack int, m Message) {
		if tier != TierRack {
			t.Fatalf("aggregator delivery at tier %d, want TierRack", tier)
		}
		aggGot = append(aggGot, aggDelivery{rack, m, eng.Now()})
		if len(aggGot) == 2 {
			// Both of rack 0's pushes are in: forward one reduced stream
			// across the core and fan a notify back out within the rack.
			nw.AggSend(TierRack, rack, Message{From: 0, To: 2, Bytes: 1000})
			nw.AggFanout(TierRack, rack, Message{From: 0, Bytes: 500}, -1)
		}
	}
	nw = New(&eng, 4, cfg, func(m Message) {
		got = append(got, delivery{m, eng.Now()})
	}, nil)
	// Machines 0 and 1 push to their own rack's aggregator (rack 0).
	nw.Send(Message{From: 0, To: 0, ToAgg: true, Bytes: 1000})
	nw.Send(Message{From: 1, To: 0, ToAgg: true, Bytes: 1000})
	eng.Run()
	if len(aggGot) != 2 {
		t.Fatalf("%d aggregator deliveries, want 2", len(aggGot))
	}
	// Rack-local pushes pay only host egress (1000 ns): no core transit.
	for i, d := range aggGot {
		if d.rack != 0 || d.at != 1000 {
			t.Errorf("agg delivery %d: rack %d at %v, want rack 0 at 1000", i, d.rack, d.at)
		}
	}
	if len(got) != 3 {
		t.Fatalf("%d machine deliveries, want 3 (2 fanout copies + 1 reduced stream)", len(got))
	}
	// Fanout copies: no egress, no core — propagation (0) + 500 ns ingress.
	for _, d := range got[:2] {
		if d.at != 1500 || !d.m.FromAgg {
			t.Errorf("fanout copy to %d at %v (FromAgg=%v), want 1500 ns, FromAgg", d.m.To, d.at, d.m.FromAgg)
		}
	}
	// Reduced stream: uplink 1000-3000, downlink 3000-5000, ingress -> 6000.
	if last := got[2]; last.m.To != 2 || last.at != 6000 || !last.m.FromAgg {
		t.Errorf("reduced stream to %d at %v (FromAgg=%v), want machine 2 at 6000 ns, FromAgg", last.m.To, last.at, last.m.FromAgg)
	}
}

// spineCfg is rackCfg with the four racks of an 8-machine run grouped
// into two pods behind a spine tier.
func spineCfg(coreOversub, spineOversub float64) Config {
	cfg := rackCfg(coreOversub)
	cfg.Topology.Pods = 2
	cfg.Topology.SpineOversub = spineOversub
	return cfg
}

// TestSpineInterPodTiming pins the six-hop path of an inter-pod message:
// host egress, rack uplink, spine uplink, spine downlink, rack downlink,
// host ingress — with the spine ports serializing at the pod-aggregate
// ToR-uplink rate divided by SpineOversub.
func TestSpineInterPodTiming(t *testing.T) {
	for _, tc := range []struct {
		spineOversub float64
		want         sim.Time
	}{
		// Non-blocking spine: pod rate = 4 machines x 8 Gbps / 4 core
		// oversub = 8 Gbps = 1 B/ns, so 1000 ns per spine hop. Total:
		// 1000 (egress) + 2000 (uplink) + 1000 + 1000 (spine) +
		// 2000 (downlink) + 1000 (ingress).
		{1, 8000},
		// 4:1 spine: 2 Gbps = 0.25 B/ns, 4000 ns per spine hop.
		{4, 14000},
		// 0 means non-blocking, like CoreOversub.
		{0, 8000},
	} {
		got := runNet(t, spineCfg(4, tc.spineOversub), 8, func(nw *Network) {
			nw.Send(Message{From: 0, To: 4, Bytes: 1000})
		})
		if len(got) != 1 {
			t.Fatalf("spine oversub %g: %d deliveries", tc.spineOversub, len(got))
		}
		if got[0].at != tc.want {
			t.Errorf("spine oversub %g: inter-pod delivery at %v ns, want %v", tc.spineOversub, got[0].at, tc.want)
		}
	}
}

// TestSpineIntraPodBitIdentical pins the turn-around contract: traffic
// between racks of the same pod never touches the spine, so its timing is
// identical to the single-tier core — and a Pods=1 topology, where every
// rack shares the one pod, is bit-identical to no spine at all.
func TestSpineIntraPodBitIdentical(t *testing.T) {
	send := func(nw *Network) {
		nw.Send(Message{From: 0, To: 2, Bytes: 1000}) // rack 0 -> rack 1, same pod
	}
	single := runNet(t, rackCfg(4), 8, send)
	twoPod := runNet(t, spineCfg(4, 4), 8, send)
	if single[0].at != twoPod[0].at {
		t.Errorf("intra-pod inter-rack delivery at %v ns, single-tier %v — the spine leaked into an intra-pod path", twoPod[0].at, single[0].at)
	}
	onePod := rackCfg(4)
	onePod.Topology.Pods = 1
	onePod.Topology.SpineOversub = 4
	got := runNet(t, onePod, 8, send)
	if single[0].at != got[0].at {
		t.Errorf("Pods=1 delivery at %v ns, no-spine %v — a one-pod spine must route nothing", got[0].at, single[0].at)
	}
	spine := runNet(t, spineCfg(4, 4), 8, func(nw *Network) {
		nw.Send(Message{From: 0, To: 4, Bytes: 1000}) // pod 0 -> pod 1
	})
	if spine[0].at == single[0].at {
		t.Errorf("inter-pod delivery at %v ns matches the intra-pod path — the spine hops were skipped", spine[0].at)
	}
}

// TestSpineBytesAccounting pins the spine-tier traffic counters: only
// inter-pod traffic transits the spine ports, and CoreBytes still counts
// the ToR ports alone.
func TestSpineBytesAccounting(t *testing.T) {
	var eng sim.Engine
	nw := New(&eng, 8, spineCfg(4, 1), func(Message) {}, nil)
	nw.Send(Message{From: 0, To: 2, Bytes: 1000}) // intra-pod
	nw.Send(Message{From: 0, To: 4, Bytes: 1000}) // inter-pod
	eng.Run()
	if got := nw.SpineBytes(); got != 2000 {
		t.Errorf("SpineBytes = %d, want 2000 (only the inter-pod message, uplink + downlink)", got)
	}
	if got := nw.SpineMsgs(); got != 2 {
		t.Errorf("SpineMsgs = %d, want 2 (one spine uplink + one downlink transit)", got)
	}
	if got := nw.CoreBytes(); got != 4000 {
		t.Errorf("CoreBytes = %d, want 4000 (two messages x uplink + downlink)", got)
	}
}

// TestSpineLookaheadAndLPs pins the sharding contract of the two-tier
// topology: the lookahead folds in the spine delay, the LP count includes
// two spine ports per pod (and a pod aggregator under Aggregation), and
// spine LPs ride the shard of their pod's first rack.
func TestSpineLookaheadAndLPs(t *testing.T) {
	cfg := cleanCfg("fifo")
	cfg.PropDelay = 500
	cfg.Topology = Topology{RackSize: 2, CoreOversub: 4, Pods: 2, CoreDelay: 100}
	if got := cfg.Lookahead(); got != 100 {
		t.Errorf("two-tier lookahead %v, want 100 (spine delay defaults to core delay)", got)
	}
	cfg.Topology.SpineDelay = 50
	if got := cfg.Lookahead(); got != 50 {
		t.Errorf("two-tier lookahead %v, want 50 (spine hop is the tighter bound)", got)
	}
	// 8 machines in racks of 2 -> 4 racks + 2 pods: 8 + 2*4 + 2*2 ports.
	if got := cfg.NumLPs(8); got != 20 {
		t.Errorf("spine NumLPs(8) = %d, want 20", got)
	}
	cfg.Aggregation = true
	if got := cfg.NumLPs(8); got != 26 {
		t.Errorf("spine+agg NumLPs(8) = %d, want 26", got)
	}
	got := cfg.LPShards(8, 2)
	want := []int{
		0, 0, 0, 0, 1, 1, 1, 1, // machines
		0, 0, 0, 0, 1, 1, 1, 1, // rack ports
		0, 0, 1, 1, // spine ports: pod p on the shard of rack p*rpp
		0, 0, 1, 1, // rack aggregators
		0, 1, // pod aggregators
	}
	if !slices.Equal(got, want) {
		t.Errorf("spine LPShards(8, 2) = %v, want %v", got, want)
	}
}

// TestPodAggregatorPath pins the hierarchical data path at the netsim
// layer: a rack aggregator's escalation (ToAgg at TierPod) rides its own
// rack's uplink and turns into the pod aggregator below the spine, a pod
// aggregator's AggSend to a machine of another pod crosses the spine, and
// its AggFanout re-enters each destination rack's downlink as
// rack-aggregator traffic.
func TestPodAggregatorPath(t *testing.T) {
	var eng sim.Engine
	cfg := spineCfg(4, 1)
	cfg.Aggregation = true
	type aggDelivery struct {
		tier, idx int
		at        sim.Time
	}
	var aggGot []aggDelivery
	var got []delivery
	var nw *Network
	cfg.AggDeliver = func(tier, idx int, m Message) {
		aggGot = append(aggGot, aggDelivery{tier, idx, eng.Now()})
		if tier == TierRack && !m.FromAgg {
			// Escalate the reduced rack stream to the own pod's aggregator.
			nw.AggSend(TierRack, idx, Message{From: 0, To: 0, ToAgg: true, AggTier: TierPod, Bytes: 1000})
			return
		}
		if tier == TierPod {
			// Reduced once more: one stream to a machine across the spine,
			// and a fanout to the pod's other rack.
			nw.AggSend(TierPod, idx, Message{From: 0, To: 5, Bytes: 1000})
			nw.AggFanout(TierPod, idx, Message{From: 0, Bytes: 500}, 0)
		}
	}
	nw = New(&eng, 8, cfg, func(m Message) {
		got = append(got, delivery{m, eng.Now()})
	}, nil)
	nw.Send(Message{From: 0, To: 0, ToAgg: true, Bytes: 1000})
	eng.Run()
	if len(aggGot) != 3 {
		t.Fatalf("%d aggregator deliveries, want 3 (rack push, pod escalation, fanout copy)", len(aggGot))
	}
	// Rack-local push: host egress only -> 1000.
	if d := aggGot[0]; d.tier != TierRack || d.idx != 0 || d.at != 1000 {
		t.Errorf("rack push delivered at tier %d idx %d at %v, want rack 0 at 1000", d.tier, d.idx, d.at)
	}
	// Escalation: rack 0 uplink 1000-3000 (0.5 B/ns), same pod -> turns
	// around into pod aggregator 0 below the spine.
	if d := aggGot[1]; d.tier != TierPod || d.idx != 0 || d.at != 3000 {
		t.Errorf("pod escalation delivered at tier %d idx %d at %v, want pod 0 at 3000", d.tier, d.idx, d.at)
	}
	// Fanout copy: rack 1 downlink serializes 500 B 3000-4000, lands on
	// rack aggregator 1 as TierRack traffic.
	if d := aggGot[2]; d.tier != TierRack || d.idx != 1 || d.at != 4000 {
		t.Errorf("fanout copy delivered at tier %d idx %d at %v, want rack 1 at 4000", d.tier, d.idx, d.at)
	}
	// Machine stream: spine uplink 3000-4000, spine downlink 4000-5000,
	// rack 2 downlink 5000-7000, ingress -> 8000.
	if len(got) != 1 || got[0].m.To != 5 || got[0].at != 8000 || !got[0].m.FromAgg {
		t.Fatalf("machine deliveries %v, want one FromAgg stream to machine 5 at 8000", got)
	}
}

// TestPodTierSendWithoutSpinePanics pins the addressing contract: a
// pod-tier aggregator send on a single-tier topology has no LP to land on
// and must refuse loudly.
func TestPodTierSendWithoutSpinePanics(t *testing.T) {
	var eng sim.Engine
	cfg := rackCfg(4)
	cfg.Aggregation = true
	cfg.AggDeliver = func(int, int, Message) {}
	nw := New(&eng, 4, cfg, func(Message) {}, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("TierPod send without a spine tier did not panic")
		}
	}()
	nw.Send(Message{From: 0, To: 0, ToAgg: true, AggTier: TierPod, Bytes: 1000})
}

// TestAggReduceRate pins the aggregator capacity model: with a finite
// AggReduceGBps the aggregator serializes ingest at that rate before the
// reduction sees each message (FIFO, canonical arrival order), and rate 0
// keeps the free instantaneous reduction.
func TestAggReduceRate(t *testing.T) {
	run := func(rate float64) []sim.Time {
		var eng sim.Engine
		cfg := rackCfg(4)
		cfg.Aggregation = true
		cfg.AggReduceGBps = rate
		var at []sim.Time
		var from []int
		cfg.AggDeliver = func(tier, rack int, m Message) {
			at = append(at, eng.Now())
			from = append(from, m.From)
		}
		nw := New(&eng, 4, cfg, func(Message) {}, nil)
		nw.Send(Message{From: 0, To: 0, ToAgg: true, Bytes: 1000})
		nw.Send(Message{From: 1, To: 0, ToAgg: true, Bytes: 1000})
		eng.Run()
		if len(at) != 2 || from[0] != 0 || from[1] != 1 {
			t.Fatalf("rate %g: deliveries from %v, want [0 1]", rate, from)
		}
		return at
	}
	// Free reduction: both pushes land as their egresses finish, at 1000.
	free := run(0)
	if free[0] != 1000 || free[1] != 1000 {
		t.Errorf("free-reduce deliveries at %v, want [1000 1000]", free)
	}
	// 1 GB/s = 1 B/ns: the two simultaneous arrivals serialize through the
	// reduce engine back to back, 1000 ns each.
	paced := run(1)
	if paced[0] != 2000 || paced[1] != 3000 {
		t.Errorf("1 GB/s deliveries at %v, want [2000 3000]", paced)
	}
}

// TestAggReduceRateValidation pins the config cross-checks of the
// capacity model: a negative rate and a rate without aggregators both
// panic at construction.
func TestAggReduceRateValidation(t *testing.T) {
	mustPanic := func(name string, cfg Config) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		var eng sim.Engine
		New(&eng, 4, cfg, func(Message) {}, nil)
	}
	neg := rackCfg(4)
	neg.Aggregation = true
	neg.AggDeliver = func(int, int, Message) {}
	neg.AggReduceGBps = -1
	mustPanic("negative AggReduceGBps", neg)
	bare := rackCfg(4)
	bare.AggReduceGBps = 8
	mustPanic("AggReduceGBps without Aggregation", bare)
}
