package netsim

import (
	"testing"

	"p3/internal/sim"
	"p3/internal/trace"
)

// cfg returns a config with clean arithmetic: 8 Gbps = 1 byte/ns, zero
// overheads unless a test opts in.
func cleanCfg(egress string) Config {
	return Config{
		BandwidthGbps:      8,
		PropDelay:          0,
		PerMsgOverhead:     0,
		HeaderBytes:        0,
		LocalBandwidthGbps: 8000,
		LocalDelay:         0,
		Egress:             egress,
	}
}

type delivery struct {
	m  Message
	at sim.Time
}

func runNet(t *testing.T, cfg Config, n int, send func(nw *Network)) []delivery {
	t.Helper()
	var eng sim.Engine
	var got []delivery
	var nw *Network
	nw = New(&eng, n, cfg, func(m Message) {
		got = append(got, delivery{m, eng.Now()})
	}, nil)
	send(nw)
	eng.Run()
	return got
}

func TestSerializationTiming(t *testing.T) {
	// 1000 bytes at 8 Gbps (1 byte/ns): egress 1000 ns + ingress 1000 ns.
	got := runNet(t, cleanCfg("fifo"), 2, func(nw *Network) {
		nw.Send(Message{From: 0, To: 1, Bytes: 1000})
	})
	if len(got) != 1 {
		t.Fatalf("%d deliveries", len(got))
	}
	if got[0].at != 2000 {
		t.Fatalf("delivered at %v ns, want 2000 (store-and-forward)", got[0].at)
	}
}

func TestOverheadAndHeaderAccounting(t *testing.T) {
	cfg := cleanCfg("fifo")
	cfg.PerMsgOverhead = 100
	cfg.HeaderBytes = 50
	got := runNet(t, cfg, 2, func(nw *Network) {
		nw.Send(Message{From: 0, To: 1, Bytes: 1000})
	})
	// Each direction: 100 overhead + 1050 bytes/1Bpns = 1150; two directions.
	if got[0].at != 2300 {
		t.Fatalf("delivered at %v, want 2300", got[0].at)
	}
}

func TestPropagationDelay(t *testing.T) {
	cfg := cleanCfg("fifo")
	cfg.PropDelay = 500
	got := runNet(t, cfg, 2, func(nw *Network) {
		nw.Send(Message{From: 0, To: 1, Bytes: 1000})
	})
	if got[0].at != 2500 {
		t.Fatalf("delivered at %v, want 2500", got[0].at)
	}
}

func TestLoopbackBypassesNIC(t *testing.T) {
	got := runNet(t, cleanCfg("fifo"), 2, func(nw *Network) {
		nw.Send(Message{From: 1, To: 1, Bytes: 8_000_000})
	})
	// Local rate 8000 Gbps = 1000 bytes/ns: 8000 ns, no double count.
	if got[0].at != 8000 {
		t.Fatalf("loopback delivered at %v, want 8000", got[0].at)
	}
}

func TestFIFOEgressOrder(t *testing.T) {
	got := runNet(t, cleanCfg("fifo"), 2, func(nw *Network) {
		nw.Send(Message{From: 0, To: 1, Bytes: 100, Priority: 9, Chunk: 0})
		nw.Send(Message{From: 0, To: 1, Bytes: 100, Priority: 1, Chunk: 1})
		nw.Send(Message{From: 0, To: 1, Bytes: 100, Priority: 5, Chunk: 2})
	})
	for i, d := range got {
		if d.m.Chunk != int32(i) {
			t.Fatalf("FIFO violated: delivery %d is chunk %d", i, d.m.Chunk)
		}
	}
}

// TestPriorityEgressPreemption is the paper's worker-side mechanism: queued
// messages reorder by priority, but the in-flight message completes first
// (preemption at message granularity).
func TestPriorityEgressPreemption(t *testing.T) {
	cfg := cleanCfg("p3")
	var eng sim.Engine
	var got []int32
	nw := New(&eng, 2, cfg, func(m Message) { got = append(got, m.Chunk) }, nil)
	// Chunk 0 (low priority) starts transmitting immediately; chunks pushed
	// while it is in flight reorder: 3 (prio 1) before 1 (prio 2) before 2
	// (prio 8).
	nw.Send(Message{From: 0, To: 1, Bytes: 10_000, Priority: 9, Chunk: 0})
	eng.After(100, func() {
		nw.Send(Message{From: 0, To: 1, Bytes: 100, Priority: 2, Chunk: 1})
		nw.Send(Message{From: 0, To: 1, Bytes: 100, Priority: 8, Chunk: 2})
		nw.Send(Message{From: 0, To: 1, Bytes: 100, Priority: 1, Chunk: 3})
	})
	eng.Run()
	want := []int32{0, 3, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("priority order = %v, want %v", got, want)
		}
	}
}

// TestCreditGatedEgressWindow: with a credit window smaller than two
// messages, the second transmission may not start until the first is fully
// delivered and its credit returns — the ByteScheduler-style bounded
// preemption window.
func TestCreditGatedEgressWindow(t *testing.T) {
	deliveries := func(egress string) []delivery {
		return runNet(t, cleanCfg(egress), 2, func(nw *Network) {
			nw.Send(Message{From: 0, To: 1, Bytes: 600, Chunk: 0})
			nw.Send(Message{From: 0, To: 1, Bytes: 600, Chunk: 1})
		})
	}
	// Ungated: egress pipelines into ingress; second delivery at 1800.
	got := deliveries("fifo")
	if got[0].at != 1200 || got[1].at != 1800 {
		t.Fatalf("fifo deliveries at %v/%v, want 1200/1800", got[0].at, got[1].at)
	}
	// 1000-byte window: the second 600-byte message must wait for the
	// first's delivery at 1200 before serializing (1200..1800), then
	// ingress (1800..2400).
	got = deliveries("credit:1000")
	if got[0].at != 1200 || got[1].at != 2400 {
		t.Fatalf("credit deliveries at %v/%v, want 1200/2400", got[0].at, got[1].at)
	}
}

// TestWindowRelaxedCreditRefund pins the refund quantization of the
// window-relaxed protocol: a delivered message's credit returns to the
// sender exactly one lookahead after delivery — the conservative delay
// that makes gated egress an ordinary cross-LP edge on any shard count.
// With a zero-latency topology the lookahead is 0 and the refund is
// effectively at delivery (the historical protocol, pinned above); with a
// propagation delay the second transmission starts one lookahead late.
func TestWindowRelaxedCreditRefund(t *testing.T) {
	cfg := cleanCfg("credit:1000")
	cfg.PropDelay = 100
	got := runNet(t, cfg, 2, func(nw *Network) {
		nw.Send(Message{From: 0, To: 1, Bytes: 600, Chunk: 0})
		nw.Send(Message{From: 0, To: 1, Bytes: 600, Chunk: 1})
	})
	// First: egress 600, prop 100, ingress 600 -> 1300. Its refund lands
	// at 1300 + 100 (lookahead); the second then serializes 1400-2000,
	// prop to 2100, ingress -> 2700.
	if got[0].at != 1300 || got[1].at != 2700 {
		t.Fatalf("window-relaxed credit deliveries at %v/%v, want 1300/2700", got[0].at, got[1].at)
	}
}

func TestIngressSerializesIncast(t *testing.T) {
	// Two senders to one receiver: their ingress serializations cannot
	// overlap, so the second delivery lands ~1000 ns after the first.
	got := runNet(t, cleanCfg("fifo"), 3, func(nw *Network) {
		nw.Send(Message{From: 0, To: 2, Bytes: 1000})
		nw.Send(Message{From: 1, To: 2, Bytes: 1000})
	})
	if len(got) != 2 {
		t.Fatalf("%d deliveries", len(got))
	}
	if got[0].at != 2000 || got[1].at != 3000 {
		t.Fatalf("incast deliveries at %v/%v, want 2000/3000", got[0].at, got[1].at)
	}
}

func TestParallelSendersDontInterfere(t *testing.T) {
	// Distinct sender and receiver pairs: full parallelism.
	got := runNet(t, cleanCfg("fifo"), 4, func(nw *Network) {
		nw.Send(Message{From: 0, To: 2, Bytes: 1000})
		nw.Send(Message{From: 1, To: 3, Bytes: 1000})
	})
	for _, d := range got {
		if d.at != 2000 {
			t.Fatalf("parallel transfer delayed: %v", d.at)
		}
	}
}

func TestByteConservation(t *testing.T) {
	var eng sim.Engine
	var delivered int64
	var nw *Network
	nw = New(&eng, 4, cleanCfg("fifo"), func(m Message) { delivered += m.Bytes }, nil)
	var sent int64
	for i := 0; i < 100; i++ {
		b := int64(i*13 + 1)
		nw.Send(Message{From: i % 4, To: (i + 1) % 4, Bytes: b})
		sent += b
	}
	eng.Run()
	if delivered != sent {
		t.Fatalf("delivered %d bytes, sent %d", delivered, sent)
	}
	if nw.BytesDelivered() != sent || nw.BytesSent() != sent {
		t.Fatalf("stats: sent %d delivered %d, want %d", nw.BytesSent(), nw.BytesDelivered(), sent)
	}
	if nw.MsgsDelivered() != 100 {
		t.Fatalf("msgs delivered = %d", nw.MsgsDelivered())
	}
}

func TestUtilizationRecording(t *testing.T) {
	var eng sim.Engine
	rec := trace.NewRecorder(2, 10*sim.Millisecond)
	rec.Start(0)
	cfg := cleanCfg("fifo")
	cfg.HeaderBytes = 0
	nw := New(&eng, 2, cfg, func(Message) {}, rec)
	nw.Send(Message{From: 0, To: 1, Bytes: 5000})
	eng.Run()
	if out := rec.TotalBytes(0, trace.Out); out != 5000 {
		t.Fatalf("machine 0 outbound = %v, want 5000", out)
	}
	if in := rec.TotalBytes(1, trace.In); in != 5000 {
		t.Fatalf("machine 1 inbound = %v, want 5000", in)
	}
	// Loopback must not touch the recorder.
	nw.Send(Message{From: 0, To: 0, Bytes: 700})
	eng.Run()
	if out := rec.TotalBytes(0, trace.Out); out != 5000 {
		t.Fatalf("loopback counted on NIC: %v", out)
	}
}

func TestQueuedEgress(t *testing.T) {
	var eng sim.Engine
	nw := New(&eng, 2, cleanCfg("fifo"), func(Message) {}, nil)
	for i := 0; i < 5; i++ {
		nw.Send(Message{From: 0, To: 1, Bytes: 1000})
	}
	// One in flight, four queued.
	if got := nw.QueuedEgress(0); got != 4 {
		t.Fatalf("QueuedEgress = %d, want 4", got)
	}
	eng.Run()
	if got := nw.QueuedEgress(0); got != 0 {
		t.Fatalf("QueuedEgress after run = %d", got)
	}
}

func TestInvalidBandwidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for zero bandwidth")
		}
	}()
	var eng sim.Engine
	New(&eng, 1, Config{}, func(Message) {}, nil)
}

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig(25)
	if cfg.BandwidthGbps != 25 || cfg.HeaderBytes == 0 || cfg.PerMsgOverhead == 0 {
		t.Fatalf("DefaultConfig = %+v", cfg)
	}
}

// TestPreemptiveEgressRecoversUrgent: with a preemption quantum, a small
// urgent message overtakes an in-flight bulk transfer at the next segment
// boundary; the bulk message retains its progress and pays exactly the
// urgent message's service time. Times are exact: 8 Gbps = 1 byte/ns,
// no overheads.
func TestPreemptiveEgressRecoversUrgent(t *testing.T) {
	run := func(quantum int64) map[int32]sim.Time {
		cfg := cleanCfg("p3")
		cfg.PreemptQuantum = quantum
		out := map[int32]sim.Time{}
		var eng sim.Engine
		nw := New(&eng, 2, cfg, func(m Message) { out[m.Chunk] = eng.Now() }, nil)
		nw.Send(Message{From: 0, To: 1, Bytes: 10_000, Priority: 9, Chunk: 0})
		eng.After(100, func() {
			nw.Send(Message{From: 0, To: 1, Bytes: 100, Priority: 0, Chunk: 1})
		})
		eng.Run()
		return out
	}
	base := run(0)
	// Non-preemptive: urgent waits out the full bulk serialization
	// (egress 10000..10100, ingress idle until the bulk drains at 20000).
	if base[1] != 20100 || base[0] != 20000 {
		t.Fatalf("non-preemptive deliveries = %v, want urgent 20100, bulk 20000", base)
	}
	pre := run(1000)
	// Preemptive: the urgent message starts at the 1000-byte boundary
	// (egress 1000..1100, ingress 1100..1200); the bulk tail resumes and
	// finishes one urgent-service later than before (egress done 10100,
	// ingress 10100..20100).
	if pre[1] != 1200 {
		t.Fatalf("urgent delivered at %v, want 1200 (next segment boundary)", pre[1])
	}
	if pre[0] != 20100 {
		t.Fatalf("bulk delivered at %v, want 20100 (progress retained, one urgent service paid)", pre[0])
	}
}

// TestPreemptQuantumTimingTelescopes: segment durations are computed from
// cumulative byte offsets, so when no preemption fires a segmented run is
// bit-identical to the whole-message path — for any quantum, overheads
// included.
func TestPreemptQuantumTimingTelescopes(t *testing.T) {
	run := func(egress string, quantum int64) []delivery {
		cfg := DefaultConfig(1.5) // real overheads, headers, prop delay
		cfg.Egress = egress
		cfg.PreemptQuantum = quantum
		var eng sim.Engine
		var got []delivery
		nw := New(&eng, 3, cfg, func(m Message) {
			got = append(got, delivery{m, eng.Now()})
		}, nil)
		for i := 0; i < 40; i++ {
			nw.Send(Message{
				From: i % 3, To: (i + 1) % 3, Bytes: int64(i*7001 + 13),
				Priority: int32(i % 5), Chunk: int32(i),
			})
		}
		eng.Run()
		return got
	}
	for _, egress := range []string{"fifo", "p3"} {
		base := run(egress, 0)
		for _, q := range []int64{999, 64 << 10, 1 << 30} {
			got := run(egress, q)
			// fifo never preempts; this p3 workload (all queued up front,
			// popped in priority order) never triggers an inversion against
			// an in-flight more-urgent message either.
			if len(got) != len(base) {
				t.Fatalf("%s q=%d: %d deliveries, want %d", egress, q, len(got), len(base))
			}
			for i := range base {
				if got[i].m.Chunk != base[i].m.Chunk || got[i].at != base[i].at {
					t.Fatalf("%s q=%d: delivery %d = chunk %d @%v, want chunk %d @%v",
						egress, q, i, got[i].m.Chunk, got[i].at, base[i].m.Chunk, base[i].at)
				}
			}
		}
	}
}

// TestPreemptionConservesBytes: preemption reorders serialization but every
// byte still arrives exactly once, and the Preemptions counter reports the
// parking events.
func TestPreemptionConservesBytes(t *testing.T) {
	cfg := cleanCfg("p3")
	cfg.PreemptQuantum = 500
	var eng sim.Engine
	var delivered int64
	var nw *Network
	nw = New(&eng, 2, cfg, func(m Message) { delivered += m.Bytes }, nil)
	var sent int64
	nw.Send(Message{From: 0, To: 1, Bytes: 50_000, Priority: 9, Chunk: 0})
	sent += 50_000
	for i := 0; i < 10; i++ {
		at := sim.Time(200 + i*300)
		b := int64(100 + i*10)
		eng.After(at, func() {
			nw.Send(Message{From: 0, To: 1, Bytes: b, Priority: 0, Chunk: int32(i + 1)})
		})
		sent += b
	}
	eng.Run()
	if delivered != sent {
		t.Fatalf("delivered %d bytes, sent %d", delivered, sent)
	}
	if nw.Preemptions() == 0 {
		t.Fatal("urgent arrivals against a 50 KB bulk transfer never preempted")
	}
}
