package pq

import (
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"
)

func intLess(a, b int) bool { return a < b }

func TestEmptyQueue(t *testing.T) {
	q := New(intLess)
	if q.Len() != 0 {
		t.Fatalf("new queue has Len %d", q.Len())
	}
	if _, ok := q.Peek(); ok {
		t.Fatal("Peek on empty queue reported ok")
	}
	if got := q.Drain(); len(got) != 0 {
		t.Fatalf("Drain on empty queue returned %v", got)
	}
}

func TestPopPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Pop on empty queue did not panic")
		}
	}()
	New(intLess).Pop()
}

func TestOrdering(t *testing.T) {
	q := New(intLess)
	for _, v := range []int{5, 3, 8, 1, 9, 2, 7} {
		q.Push(v)
	}
	want := []int{1, 2, 3, 5, 7, 8, 9}
	for i, w := range want {
		if got := q.Pop(); got != w {
			t.Fatalf("pop %d = %d, want %d", i, got, w)
		}
	}
}

func TestPeekMatchesPop(t *testing.T) {
	q := New(intLess)
	for _, v := range []int{4, 2, 6} {
		q.Push(v)
	}
	for q.Len() > 0 {
		p, ok := q.Peek()
		if !ok {
			t.Fatal("Peek failed on non-empty queue")
		}
		if got := q.Pop(); got != p {
			t.Fatalf("Peek %d != Pop %d", p, got)
		}
	}
}

type prioVal struct {
	prio int
	seq  int
}

// TestFIFOWithinEqualPriority is the scheduler invariant the paper relies
// on: slices of the same layer (equal priority) transmit in push order.
func TestFIFOWithinEqualPriority(t *testing.T) {
	q := New(func(a, b prioVal) bool { return a.prio < b.prio })
	for i := 0; i < 100; i++ {
		q.Push(prioVal{prio: i % 3, seq: i})
	}
	lastSeq := map[int]int{0: -1, 1: -1, 2: -1}
	lastPrio := -1
	for q.Len() > 0 {
		v := q.Pop()
		if v.prio < lastPrio {
			t.Fatalf("priority went backwards: %d after %d", v.prio, lastPrio)
		}
		lastPrio = v.prio
		if v.seq <= lastSeq[v.prio] {
			t.Fatalf("FIFO violated within priority %d: seq %d after %d", v.prio, v.seq, lastSeq[v.prio])
		}
		lastSeq[v.prio] = v.seq
	}
}

// TestDrainMatchesStableSort checks against the reference semantics: drain
// order equals a stable sort of the input by priority.
func TestDrainMatchesStableSort(t *testing.T) {
	f := func(vals []int16) bool {
		q := New(func(a, b int16) bool { return a < b })
		for _, v := range vals {
			q.Push(v)
		}
		got := q.Drain()
		want := append([]int16(nil), vals...)
		sort.SliceStable(want, func(i, j int) bool { return want[i] < want[j] })
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestInterleavedPushPop exercises heap integrity under mixed operations.
func TestInterleavedPushPop(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	q := New(intLess)
	var mirror []int
	for step := 0; step < 5000; step++ {
		if q.Len() == 0 || rng.IntN(3) > 0 {
			v := rng.IntN(1000)
			q.Push(v)
			mirror = append(mirror, v)
			sort.Ints(mirror)
			continue
		}
		got := q.Pop()
		if got != mirror[0] {
			t.Fatalf("step %d: pop %d, want %d", step, got, mirror[0])
		}
		mirror = mirror[1:]
	}
}

func BenchmarkPushPop(b *testing.B) {
	q := New(intLess)
	rng := rand.New(rand.NewPCG(1, 2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Push(rng.IntN(1 << 20))
		if q.Len() > 1024 {
			q.Pop()
		}
	}
}
