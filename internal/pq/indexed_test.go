package pq

import (
	"math/rand/v2"
	"sort"
	"testing"
)

// tracked is an Indexed element whose heap position is recorded by the move
// callback, the way sched.Queue's flows record theirs.
type tracked struct {
	key int
	seq int
	idx int
}

func newTrackedHeap() *Indexed[*tracked] {
	return NewIndexed(
		func(a, b *tracked) bool {
			if a.key != b.key {
				return a.key < b.key
			}
			return a.seq < b.seq // unique: strict total order
		},
		func(x *tracked, i int) { x.idx = i },
	)
}

// verifyIndex checks that every element's recorded position is its actual
// slab position — the invariant Fix and Remove address by.
func verifyIndex(t *testing.T, h *Indexed[*tracked]) {
	t.Helper()
	for i, x := range h.items {
		if x.idx != i {
			t.Fatalf("element %v recorded idx %d, actually at %d", x, x.idx, i)
		}
	}
}

func TestIndexedOrdering(t *testing.T) {
	h := newTrackedHeap()
	var want []int
	for i, k := range []int{5, 3, 8, 1, 9, 2, 7, 3, 5} {
		h.Push(&tracked{key: k, seq: i})
		want = append(want, k)
		verifyIndex(t, h)
	}
	sort.Ints(want)
	for _, w := range want {
		if got := h.Pop(); got.key != w {
			t.Fatalf("pop = %d, want %d", got.key, w)
		}
		verifyIndex(t, h)
	}
	if h.Len() != 0 {
		t.Fatalf("drained heap has Len %d", h.Len())
	}
}

func TestIndexedPopReportsDeparture(t *testing.T) {
	h := newTrackedHeap()
	x := &tracked{key: 1}
	h.Push(x)
	if x.idx != 0 {
		t.Fatalf("pushed element at idx %d", x.idx)
	}
	h.Pop()
	if x.idx != -1 {
		t.Fatalf("popped element still reports idx %d, want -1", x.idx)
	}
}

// TestIndexedPopClearsSlot pins the slab-hygiene contract: a popped slot must
// not keep the old element reachable from the backing array.
func TestIndexedPopClearsSlot(t *testing.T) {
	h := newTrackedHeap()
	h.Push(&tracked{key: 1})
	h.Push(&tracked{key: 2})
	h.Pop()
	if got := h.items[:cap(h.items)][1]; got != nil {
		t.Fatalf("vacated slab slot still holds %v", got)
	}
}

// TestIndexedFixAndRemove drives random push/pop/fix/remove interleavings
// against a sorted-slice mirror.
func TestIndexedFixAndRemove(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 11))
	h := newTrackedHeap()
	var live []*tracked
	seq := 0
	popMin := func() *tracked {
		sort.Slice(live, func(i, j int) bool {
			if live[i].key != live[j].key {
				return live[i].key < live[j].key
			}
			return live[i].seq < live[j].seq
		})
		m := live[0]
		live = live[1:]
		return m
	}
	for step := 0; step < 4000; step++ {
		switch op := rng.IntN(5); {
		case op <= 1 || h.Len() == 0: // push
			x := &tracked{key: rng.IntN(50), seq: seq}
			seq++
			h.Push(x)
			live = append(live, x)
		case op == 2: // pop
			want := popMin()
			if got := h.Pop(); got != want {
				t.Fatalf("step %d: pop %v, want %v", step, got, want)
			}
		case op == 3: // fix: re-key a random element in place
			x := live[rng.IntN(len(live))]
			x.key = rng.IntN(50)
			x.seq = seq // re-keying also refreshes the tie-break
			seq++
			h.Fix(x.idx)
		default: // remove a random element from the middle
			i := rng.IntN(len(live))
			x := live[i]
			live = append(live[:i], live[i+1:]...)
			if got := h.Remove(x.idx); got != x {
				t.Fatalf("step %d: removed %v, want %v", step, got, x)
			}
			if x.idx != -1 {
				t.Fatalf("step %d: removed element reports idx %d", step, x.idx)
			}
		}
		verifyIndex(t, h)
		if h.Len() != len(live) {
			t.Fatalf("step %d: heap Len %d, mirror %d", step, h.Len(), len(live))
		}
	}
}

// TestQueuePopClearsSlot pins the same slab hygiene on the FIFO-tie queue:
// the vacated backing slot of a Pop must not pin the popped value.
func TestQueuePopClearsSlot(t *testing.T) {
	q := New(func(a, b *tracked) bool { return a.key < b.key })
	q.Push(&tracked{key: 1})
	q.Push(&tracked{key: 2})
	q.Pop()
	if got := q.items[:cap(q.items)][1].value; got != nil {
		t.Fatalf("vacated slab slot still holds %v", got)
	}
}

// TestQueueSteadyStateAllocs pins the allocation contract of the rewrite:
// once the slab has grown, balanced Push/Pop cycles allocate nothing (the
// container/heap implementation this replaced boxed every Push).
func TestQueueSteadyStateAllocs(t *testing.T) {
	q := New(intLess)
	for i := 0; i < 256; i++ {
		q.Push(i)
	}
	avg := testing.AllocsPerRun(1000, func() {
		q.Push(42)
		q.Pop()
	})
	if avg != 0 {
		t.Fatalf("steady-state Push/Pop allocates %.1f per op, want 0", avg)
	}
}

func TestIndexedSteadyStateAllocs(t *testing.T) {
	h := newTrackedHeap()
	pool := make([]*tracked, 256)
	for i := range pool {
		pool[i] = &tracked{key: i % 37, seq: i}
		h.Push(pool[i])
	}
	avg := testing.AllocsPerRun(1000, func() {
		x := h.Pop()
		h.Push(x)
		h.Fix(x.idx)
	})
	if avg != 0 {
		t.Fatalf("steady-state Pop/Push/Fix allocates %.1f per op, want 0", avg)
	}
}
