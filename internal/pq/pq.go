// Package pq provides the deterministic priority queues used throughout the
// library: by the P3 scheduler (worker- and server-side producer/consumer
// loops), by the network simulator's priority egress discipline, and by the
// TCP transport's sender goroutine.
//
// Lower Less() values are dequeued first. Queue breaks ties in insertion
// order (FIFO), which both matches the behaviour of the paper's
// implementation (slices of the same layer are sent in order) and keeps the
// discrete-event simulation deterministic. Indexed is the position-tracking
// variant behind O(log n) hand-off structures such as sched.Queue's
// flow-head dispatcher.
//
// Both types store elements by value in one contiguous backing slice (a
// slab) and sift with monomorphic code rather than container/heap, whose
// interface methods box every pushed element into an `any` — one heap
// allocation per Push. Steady-state Push/Pop cycles here allocate nothing
// once the slab has grown to the working-set size, and popped slots are
// cleared so the slab never pins dead elements (closures, frames) for the
// garbage collector.
package pq

// Queue is a min-queue over T ordered by the less function supplied at
// construction, with FIFO tie-breaking. The zero value is not usable; call
// New.
type Queue[T any] struct {
	items []item[T]
	less  func(a, b T) bool
	seq   uint64
}

type item[T any] struct {
	value T
	seq   uint64
}

// New returns an empty queue ordered by less (true means a dequeues before b).
func New[T any](less func(a, b T) bool) *Queue[T] {
	return &Queue[T]{less: less}
}

// Len reports the number of queued elements.
func (q *Queue[T]) Len() int { return len(q.items) }

// before is the heap order: less first, insertion order on ties.
//
//p3:noescape
func (q *Queue[T]) before(a, b item[T]) bool {
	if q.less(a.value, b.value) {
		return true
	}
	if q.less(b.value, a.value) {
		return false
	}
	return a.seq < b.seq
}

// Push adds v to the queue in O(log n), allocating only when the backing
// slab must grow.
//
//p3:noescape
func (q *Queue[T]) Push(v T) {
	q.seq++
	q.items = append(q.items, item[T]{value: v, seq: q.seq})
	q.siftUp(len(q.items) - 1)
}

// Pop removes and returns the minimum element. It panics on an empty queue.
//
//p3:noescape
func (q *Queue[T]) Pop() T {
	top := q.items[0]
	n := len(q.items) - 1
	q.items[0] = q.items[n]
	q.items[n] = item[T]{} // clear the vacated slot: the slab must not pin dead values
	q.items = q.items[:n]
	if n > 0 {
		q.siftDown(0)
	}
	return top.value
}

// Peek returns the minimum element without removing it. The second result is
// false if the queue is empty.
//
//p3:noescape
func (q *Queue[T]) Peek() (T, bool) {
	if len(q.items) == 0 {
		var zero T
		return zero, false
	}
	return q.items[0].value, true
}

// Drain removes all elements in priority order and returns them.
func (q *Queue[T]) Drain() []T {
	out := make([]T, 0, q.Len())
	for q.Len() > 0 {
		out = append(out, q.Pop())
	}
	return out
}

//p3:noescape
func (q *Queue[T]) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.before(q.items[i], q.items[parent]) {
			return
		}
		q.items[i], q.items[parent] = q.items[parent], q.items[i]
		i = parent
	}
}

//p3:noescape
func (q *Queue[T]) siftDown(i int) {
	n := len(q.items)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		min := left
		if right := left + 1; right < n && q.before(q.items[right], q.items[left]) {
			min = right
		}
		if !q.before(q.items[min], q.items[i]) {
			return
		}
		q.items[i], q.items[min] = q.items[min], q.items[i]
		i = min
	}
}

// Indexed is a min-heap over T that reports every element's current heap
// position through a callback, so elements can be re-prioritized (Fix) or
// removed (Remove) from the middle in O(log n) — the structure behind
// sched.Queue's flow-head dispatcher, where each flow must know its slot so
// a head change costs one sift instead of a linear rescan.
//
// Unlike Queue, Indexed does not tie-break internally: less must be a strict
// weak order, and callers that need determinism (every caller in this
// repository) must make it total, e.g. by comparing a unique sequence number
// last. The zero value is not usable; call NewIndexed.
type Indexed[T any] struct {
	items []T
	less  func(a, b T) bool
	move  func(x T, i int)
}

// NewIndexed returns an empty indexed heap ordered by less. move is invoked
// with an element's new position every time it lands in a slot — including
// on Push — and with -1 when the element leaves the heap (Pop, Remove);
// callers record it to address Fix and Remove. move must not touch the heap.
func NewIndexed[T any](less func(a, b T) bool, move func(x T, i int)) *Indexed[T] {
	return &Indexed[T]{less: less, move: move}
}

// Len reports the number of held elements.
func (h *Indexed[T]) Len() int { return len(h.items) }

// Peek returns the minimum element without removing it. The second result is
// false if the heap is empty.
//
//p3:noescape
func (h *Indexed[T]) Peek() (T, bool) {
	if len(h.items) == 0 {
		var zero T
		return zero, false
	}
	return h.items[0], true
}

// Push adds x in O(log n), allocating only when the backing slab must grow.
//
//p3:noescape
func (h *Indexed[T]) Push(x T) {
	i := len(h.items)
	h.items = append(h.items, x)
	h.move(x, i)
	h.siftUp(i)
}

// Pop removes and returns the minimum element. It panics on an empty heap.
//
//p3:noescape
func (h *Indexed[T]) Pop() T {
	return h.Remove(0)
}

// Remove deletes and returns the element at position i (as last reported by
// move) in O(log n). The removed element receives a final move(x, -1).
//
//p3:noescape
func (h *Indexed[T]) Remove(i int) T {
	x := h.items[i]
	n := len(h.items) - 1
	if i != n {
		h.items[i] = h.items[n]
		h.move(h.items[i], i)
	}
	var zero T
	h.items[n] = zero // clear the vacated slot: the slab must not pin dead values
	h.items = h.items[:n]
	if i != n {
		h.Fix(i)
	}
	h.move(x, -1)
	return x
}

// Fix restores the heap order after the element at position i changed its
// key (e.g. a flow's head changed), in O(log n).
//
//p3:noescape
func (h *Indexed[T]) Fix(i int) {
	if !h.siftDown(i) {
		h.siftUp(i)
	}
}

//p3:noescape
func (h *Indexed[T]) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(h.items[i], h.items[parent]) {
			return
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		h.move(h.items[i], i)
		h.move(h.items[parent], parent)
		i = parent
	}
}

// siftDown reports whether it moved the element at i.
//
//p3:noescape
func (h *Indexed[T]) siftDown(i int) bool {
	moved := false
	n := len(h.items)
	for {
		left := 2*i + 1
		if left >= n {
			return moved
		}
		min := left
		if right := left + 1; right < n && h.less(h.items[right], h.items[left]) {
			min = right
		}
		if !h.less(h.items[min], h.items[i]) {
			return moved
		}
		h.items[i], h.items[min] = h.items[min], h.items[i]
		h.move(h.items[i], i)
		h.move(h.items[min], min)
		i = min
		moved = true
	}
}
