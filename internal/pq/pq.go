// Package pq provides a deterministic priority queue used throughout the
// library: by the P3 scheduler (worker- and server-side producer/consumer
// loops), by the network simulator's priority egress discipline, and by the
// TCP transport's sender goroutine.
//
// Lower Less() values are dequeued first. Elements that compare equal are
// dequeued in insertion order (FIFO), which both matches the behaviour of the
// paper's implementation (slices of the same layer are sent in order) and
// keeps the discrete-event simulation deterministic.
package pq

import "container/heap"

// Queue is a min-queue over T ordered by the less function supplied at
// construction, with FIFO tie-breaking. The zero value is not usable; call
// New.
type Queue[T any] struct {
	h inner[T]
}

type item[T any] struct {
	value T
	seq   uint64
}

type inner[T any] struct {
	items []item[T]
	less  func(a, b T) bool
	seq   uint64
}

// New returns an empty queue ordered by less (true means a dequeues before b).
func New[T any](less func(a, b T) bool) *Queue[T] {
	return &Queue[T]{h: inner[T]{less: less}}
}

// Len reports the number of queued elements.
func (q *Queue[T]) Len() int { return len(q.h.items) }

// Push adds v to the queue.
func (q *Queue[T]) Push(v T) {
	q.h.seq++
	heap.Push(&q.h, item[T]{value: v, seq: q.h.seq})
}

// Pop removes and returns the minimum element. It panics on an empty queue.
func (q *Queue[T]) Pop() T {
	return heap.Pop(&q.h).(item[T]).value
}

// Peek returns the minimum element without removing it. The second result is
// false if the queue is empty.
func (q *Queue[T]) Peek() (T, bool) {
	if len(q.h.items) == 0 {
		var zero T
		return zero, false
	}
	return q.h.items[0].value, true
}

// Drain removes all elements in priority order and returns them.
func (q *Queue[T]) Drain() []T {
	out := make([]T, 0, q.Len())
	for q.Len() > 0 {
		out = append(out, q.Pop())
	}
	return out
}

func (h *inner[T]) Len() int { return len(h.items) }

func (h *inner[T]) Less(i, j int) bool {
	a, b := h.items[i], h.items[j]
	if h.less(a.value, b.value) {
		return true
	}
	if h.less(b.value, a.value) {
		return false
	}
	return a.seq < b.seq
}

func (h *inner[T]) Swap(i, j int) { h.items[i], h.items[j] = h.items[j], h.items[i] }

func (h *inner[T]) Push(x any) { h.items = append(h.items, x.(item[T])) }

func (h *inner[T]) Pop() any {
	old := h.items
	n := len(old)
	it := old[n-1]
	h.items = old[:n-1]
	return it
}
