package pq_test

import (
	"fmt"

	"p3/internal/pq"
)

// Example shows the scheduler semantics P3 relies on: lowest priority value
// first, FIFO among equals — so two slices of the same layer keep their
// push order while a more urgent layer's slice overtakes both.
func Example() {
	type slice struct {
		layer int
		seq   int
	}
	q := pq.New(func(a, b slice) bool { return a.layer < b.layer })
	q.Push(slice{layer: 3, seq: 0}) // bulk layer, pushed first
	q.Push(slice{layer: 3, seq: 1})
	q.Push(slice{layer: 0, seq: 0}) // urgent layer, pushed last
	for q.Len() > 0 {
		s := q.Pop()
		fmt.Printf("layer %d seq %d\n", s.layer, s.seq)
	}
	// Output:
	// layer 0 seq 0
	// layer 3 seq 0
	// layer 3 seq 1
}
