package nn

import (
	"math"
	"math/rand/v2"
	"testing"

	"p3/internal/tensor"
)

func randBatch(rng *rand.Rand, n, d, classes int) (*tensor.Mat, []int) {
	x := tensor.NewMat(n, d)
	x.Randn(rng, 1)
	y := make([]int, n)
	for i := range y {
		y[i] = rng.IntN(classes)
	}
	return x, y
}

// TestGradientCheck validates the whole backward pass against central
// finite differences — the canonical correctness test for a hand-written
// autodiff stack.
func TestGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	net := NewResidualMLP(Config{In: 5, Width: 6, Classes: 3, Blocks: 2, Seed: 21})
	x, y := randBatch(rng, 4, 5, 3)

	logits := net.Forward(x)
	net.LossAndBackward(logits, y)

	params := net.Params()
	const eps = 1e-6
	checked := 0
	for pi, p := range params {
		// Spot-check a handful of coordinates per tensor.
		stride := len(p.Data)/7 + 1
		for i := 0; i < len(p.Data); i += stride {
			orig := p.Data[i]
			p.Data[i] = orig + eps
			_, lossPlus := SoftmaxCrossEntropy(net.Forward(x), y)
			p.Data[i] = orig - eps
			_, lossMinus := SoftmaxCrossEntropy(net.Forward(x), y)
			p.Data[i] = orig

			numeric := (lossPlus - lossMinus) / (2 * eps)
			analytic := p.Grad[i]
			diff := math.Abs(numeric - analytic)
			scale := math.Max(1, math.Max(math.Abs(numeric), math.Abs(analytic)))
			if diff/scale > 1e-4 {
				t.Fatalf("param %d (%s) coord %d: analytic %v vs numeric %v",
					pi, p.Name, i, analytic, numeric)
			}
			checked++
		}
	}
	if checked < 20 {
		t.Fatalf("only %d coordinates checked", checked)
	}
}

func TestForwardShapes(t *testing.T) {
	net := NewResidualMLP(Config{In: 10, Width: 16, Classes: 4, Blocks: 3, Seed: 1})
	x := tensor.NewMat(7, 10)
	logits := net.Forward(x)
	if logits.Rows != 7 || logits.Cols != 4 {
		t.Fatalf("logits shape %dx%d", logits.Rows, logits.Cols)
	}
}

func TestParamsLayout(t *testing.T) {
	net := NewResidualMLP(Config{In: 10, Width: 16, Classes: 4, Blocks: 2, Seed: 1})
	ps := net.Params()
	// stem (2) + 2 blocks x 2 linears x 2 tensors + head (2) = 12.
	if len(ps) != 12 {
		t.Fatalf("%d parameter tensors, want 12", len(ps))
	}
	if ps[0].Name != "stem_weight" || ps[len(ps)-1].Name != "head_bias" {
		t.Fatalf("unexpected order: %s .. %s", ps[0].Name, ps[len(ps)-1].Name)
	}
	want := 10*16 + 16 + 2*(16*16+16+16*16+16) + 16*4 + 4
	if got := net.NumParams(); got != want {
		t.Fatalf("NumParams = %d, want %d", got, want)
	}
	for _, p := range ps {
		if len(p.Data) != len(p.Grad) {
			t.Fatalf("%s: data/grad length mismatch", p.Name)
		}
	}
}

func TestDeterministicInit(t *testing.T) {
	a := NewResidualMLP(Config{In: 4, Width: 8, Classes: 2, Blocks: 1, Seed: 5})
	b := NewResidualMLP(Config{In: 4, Width: 8, Classes: 2, Blocks: 1, Seed: 5})
	pa, pb := a.Params(), b.Params()
	for i := range pa {
		for j := range pa[i].Data {
			if pa[i].Data[j] != pb[i].Data[j] {
				t.Fatal("same seed produced different init")
			}
		}
	}
	c := NewResidualMLP(Config{In: 4, Width: 8, Classes: 2, Blocks: 1, Seed: 6})
	if c.Params()[0].Data[0] == pa[0].Data[0] {
		t.Fatal("different seed produced identical init")
	}
}

func TestSoftmaxCrossEntropy(t *testing.T) {
	logits := tensor.FromData(1, 3, []float64{0, 0, 0})
	probs, loss := SoftmaxCrossEntropy(logits, []int{1})
	if math.Abs(loss-math.Log(3)) > 1e-12 {
		t.Fatalf("uniform loss = %v, want ln 3", loss)
	}
	for _, p := range probs.Row(0) {
		if math.Abs(p-1.0/3.0) > 1e-12 {
			t.Fatalf("uniform probs = %v", probs.Row(0))
		}
	}
	// Large logits must not overflow.
	logits = tensor.FromData(1, 2, []float64{1e4, -1e4})
	_, loss = SoftmaxCrossEntropy(logits, []int{0})
	if math.IsNaN(loss) || math.IsInf(loss, 0) || loss < 0 {
		t.Fatalf("unstable softmax: loss = %v", loss)
	}
}

func TestZeroGrads(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	net := NewResidualMLP(Config{In: 4, Width: 8, Classes: 2, Blocks: 1, Seed: 5})
	x, y := randBatch(rng, 3, 4, 2)
	net.LossAndBackward(net.Forward(x), y)
	net.ZeroGrads()
	for _, p := range net.Params() {
		for _, g := range p.Grad {
			if g != 0 {
				t.Fatal("gradients not cleared")
			}
		}
	}
}

func TestAccuracyBounds(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	net := NewResidualMLP(Config{In: 4, Width: 8, Classes: 2, Blocks: 1, Seed: 5})
	x, y := randBatch(rng, 50, 4, 2)
	acc := net.Accuracy(x, y)
	if acc < 0 || acc > 1 {
		t.Fatalf("accuracy %v out of [0,1]", acc)
	}
}

func TestLossDecreasesWithTraining(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	net := NewResidualMLP(Config{In: 8, Width: 16, Classes: 3, Blocks: 2, Seed: 9})
	x, y := randBatch(rng, 32, 8, 3)
	var first, last float64
	for step := 0; step < 60; step++ {
		loss := net.LossAndBackward(net.Forward(x), y)
		if step == 0 {
			first = loss
		}
		last = loss
		for _, p := range net.Params() {
			for i := range p.Data {
				p.Data[i] -= 0.05 * p.Grad[i]
			}
		}
	}
	if last > first*0.5 {
		t.Fatalf("loss did not halve: %v -> %v", first, last)
	}
}

func TestLossAndBackwardPanicsOnMismatch(t *testing.T) {
	net := NewResidualMLP(Config{In: 4, Width: 8, Classes: 2, Blocks: 1, Seed: 5})
	logits := tensor.NewMat(3, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("label/logit mismatch accepted")
		}
	}()
	net.LossAndBackward(logits, []int{0})
}
