// Package nn implements the residual feed-forward network used by the
// convergence experiments (Sections 5.6 and Appendix B.2 of the paper use
// ResNet-110 on CIFAR-10; our substitute is a residual MLP on a synthetic
// classification task — see DESIGN.md for why the substitution preserves
// the claims under test).
//
// Parameters are exposed as named flat tensors (Param) in forward order,
// mirroring the KVStore key granularity, so the data-parallel trainer can
// exchange gradients through exactly the same slicing/priority machinery as
// the timing experiments.
package nn

import (
	"fmt"
	"math"
	"math/rand/v2"

	"p3/internal/tensor"
)

// Param is one learnable tensor and its gradient, in flat form.
type Param struct {
	Name string
	Data []float64
	Grad []float64
}

// Layer is a differentiable module.
type Layer interface {
	// Forward consumes a batch (rows = samples) and returns the output
	// batch. The layer may cache activations for Backward.
	Forward(x *tensor.Mat) *tensor.Mat
	// Backward consumes dL/d(output) and returns dL/d(input), accumulating
	// parameter gradients.
	Backward(dout *tensor.Mat) *tensor.Mat
	// Params returns the layer's parameter tensors in forward order.
	Params() []*Param
}

// ---- Linear ----

// Linear is a fully connected layer: y = x @ W + b.
type Linear struct {
	In, Out int
	W       *tensor.Mat // In x Out
	B       []float64
	dW      *tensor.Mat
	dB      []float64
	x       *tensor.Mat // cached input
	name    string
}

// NewLinear creates a Linear layer with He-initialized weights.
func NewLinear(name string, in, out int, rng *rand.Rand) *Linear {
	l := &Linear{
		In: in, Out: out,
		W:    tensor.NewMat(in, out),
		B:    make([]float64, out),
		dW:   tensor.NewMat(in, out),
		dB:   make([]float64, out),
		name: name,
	}
	l.W.Randn(rng, math.Sqrt(2.0/float64(in)))
	return l
}

// Forward implements Layer.
func (l *Linear) Forward(x *tensor.Mat) *tensor.Mat {
	l.x = x
	y := tensor.NewMat(x.Rows, l.Out)
	tensor.Matmul(y, x, l.W)
	for i := 0; i < y.Rows; i++ {
		tensor.Axpy(1, l.B, y.Row(i))
	}
	return y
}

// Backward implements Layer.
func (l *Linear) Backward(dout *tensor.Mat) *tensor.Mat {
	tensor.MatmulTN(l.dW, l.x, dout) // dW = x^T @ dout (overwrites)
	for j := range l.dB {
		l.dB[j] = 0
	}
	for i := 0; i < dout.Rows; i++ {
		tensor.Axpy(1, dout.Row(i), l.dB)
	}
	dx := tensor.NewMat(dout.Rows, l.In)
	tensor.MatmulNT(dx, dout, l.W) // dx = dout @ W^T
	return dx
}

// Params implements Layer.
func (l *Linear) Params() []*Param {
	return []*Param{
		{Name: l.name + "_weight", Data: l.W.Data, Grad: l.dW.Data},
		{Name: l.name + "_bias", Data: l.B, Grad: l.dB},
	}
}

// ---- ReLU ----

// ReLU applies max(0, x) elementwise.
type ReLU struct {
	mask []bool
}

// Forward implements Layer.
func (r *ReLU) Forward(x *tensor.Mat) *tensor.Mat {
	y := x.Clone()
	if cap(r.mask) < len(y.Data) {
		r.mask = make([]bool, len(y.Data))
	}
	r.mask = r.mask[:len(y.Data)]
	for i, v := range y.Data {
		if v <= 0 {
			y.Data[i] = 0
			r.mask[i] = false
		} else {
			r.mask[i] = true
		}
	}
	return y
}

// Backward implements Layer.
func (r *ReLU) Backward(dout *tensor.Mat) *tensor.Mat {
	dx := dout.Clone()
	for i := range dx.Data {
		if !r.mask[i] {
			dx.Data[i] = 0
		}
	}
	return dx
}

// Params implements Layer.
func (r *ReLU) Params() []*Param { return nil }

// ---- Residual block ----

// Residual is a two-layer residual block: y = x + W2·relu(W1·x), followed by
// a ReLU — the MLP analogue of a basic ResNet block.
type Residual struct {
	l1, l2 *Linear
	r1, r2 *ReLU
	x      *tensor.Mat
}

// NewResidual creates a residual block of the given width. The second
// layer's weights are down-scaled at initialization (Fixup-style) so deep
// unnormalized residual stacks train stably at CIFAR-recipe learning rates.
func NewResidual(name string, width int, rng *rand.Rand) *Residual {
	b := &Residual{
		l1: NewLinear(name+"_fc1", width, width, rng),
		l2: NewLinear(name+"_fc2", width, width, rng),
		r1: &ReLU{},
		r2: &ReLU{},
	}
	tensor.Scale(0.2, b.l2.W.Data)
	return b
}

// Forward implements Layer.
func (b *Residual) Forward(x *tensor.Mat) *tensor.Mat {
	b.x = x
	h := b.r1.Forward(b.l1.Forward(x))
	y := b.l2.Forward(h)
	for i := range y.Data {
		y.Data[i] += x.Data[i]
	}
	return b.r2.Forward(y)
}

// Backward implements Layer.
func (b *Residual) Backward(dout *tensor.Mat) *tensor.Mat {
	d := b.r2.Backward(dout)
	dx := b.l1.Backward(b.r1.Backward(b.l2.Backward(d)))
	for i := range dx.Data {
		dx.Data[i] += d.Data[i] // skip connection
	}
	return dx
}

// Params implements Layer.
func (b *Residual) Params() []*Param {
	return append(b.l1.Params(), b.l2.Params()...)
}

// ---- Network ----

// Network is a sequential stack of layers with a softmax cross-entropy head.
type Network struct {
	Layers []Layer
	probs  *tensor.Mat // cached softmax output
}

// Config describes a residual MLP classifier.
type Config struct {
	In, Width, Classes, Blocks int
	Seed                       int64
}

// NewResidualMLP builds input->Width, Blocks residual blocks, Width->Classes.
// It is the stand-in for ResNet-110 in the convergence studies.
func NewResidualMLP(cfg Config) *Network {
	rng := rand.New(rand.NewPCG(uint64(cfg.Seed), uint64(cfg.Seed)+0x715BA))
	n := &Network{}
	n.Layers = append(n.Layers, NewLinear("stem", cfg.In, cfg.Width, rng), &ReLU{})
	for i := 0; i < cfg.Blocks; i++ {
		n.Layers = append(n.Layers, NewResidual(fmt.Sprintf("block%d", i+1), cfg.Width, rng))
	}
	n.Layers = append(n.Layers, NewLinear("head", cfg.Width, cfg.Classes, rng))
	return n
}

// Forward runs the network and returns the logits.
func (n *Network) Forward(x *tensor.Mat) *tensor.Mat {
	h := x
	for _, l := range n.Layers {
		h = l.Forward(h)
	}
	return h
}

// LossAndBackward computes mean softmax cross-entropy against labels,
// populates all parameter gradients, and returns the loss.
func (n *Network) LossAndBackward(logits *tensor.Mat, labels []int) float64 {
	if logits.Rows != len(labels) {
		panic(fmt.Sprintf("nn: %d logits rows vs %d labels", logits.Rows, len(labels)))
	}
	probs, loss := SoftmaxCrossEntropy(logits, labels)
	n.probs = probs
	// d(logits) = (probs - onehot) / batch
	dout := probs.Clone()
	inv := 1.0 / float64(len(labels))
	for i, lab := range labels {
		row := dout.Row(i)
		row[lab] -= 1
		tensor.Scale(inv, row)
	}
	for i := len(n.Layers) - 1; i >= 0; i-- {
		dout = n.Layers[i].Backward(dout)
	}
	return loss
}

// Params returns all parameter tensors in forward order.
func (n *Network) Params() []*Param {
	var ps []*Param
	for _, l := range n.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// NumParams returns the total scalar parameter count.
func (n *Network) NumParams() int {
	total := 0
	for _, p := range n.Params() {
		total += len(p.Data)
	}
	return total
}

// ZeroGrads clears all gradients.
func (n *Network) ZeroGrads() {
	for _, p := range n.Params() {
		for i := range p.Grad {
			p.Grad[i] = 0
		}
	}
}

// Accuracy returns the fraction of samples whose argmax logit matches the
// label.
func (n *Network) Accuracy(x *tensor.Mat, labels []int) float64 {
	logits := n.Forward(x)
	correct := 0
	for i, lab := range labels {
		row := logits.Row(i)
		best := 0
		for j := 1; j < len(row); j++ {
			if row[j] > row[best] {
				best = j
			}
		}
		if best == lab {
			correct++
		}
	}
	return float64(correct) / float64(len(labels))
}

// SoftmaxCrossEntropy returns row-wise softmax probabilities and the mean
// cross-entropy loss against labels.
func SoftmaxCrossEntropy(logits *tensor.Mat, labels []int) (*tensor.Mat, float64) {
	probs := tensor.NewMat(logits.Rows, logits.Cols)
	var loss float64
	for i := 0; i < logits.Rows; i++ {
		row := logits.Row(i)
		out := probs.Row(i)
		maxv := row[0]
		for _, v := range row[1:] {
			if v > maxv {
				maxv = v
			}
		}
		var sum float64
		for j, v := range row {
			e := math.Exp(v - maxv)
			out[j] = e
			sum += e
		}
		for j := range out {
			out[j] /= sum
		}
		p := out[labels[i]]
		if p < 1e-12 {
			p = 1e-12
		}
		loss -= math.Log(p)
	}
	return probs, loss / float64(logits.Rows)
}
